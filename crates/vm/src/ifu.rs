//! The instruction-fetch-unit return-prediction stack (paper §6).
//!
//! "The IFU can keep a small stack of return information: frame
//! pointer, global frame pointer GF and PC. As long as calls and
//! returns follow a LIFO discipline this allows returns to be handled
//! as fast as calls. When something unusual happens (e.g., any XFER
//! other than a simple call or return, or running out of space in the
//! return stack), fall back to the general scheme by flushing the
//! return stack."
//!
//! The stack itself is bookkeeping; the memory writes implied by a
//! flush or eviction (the caller's PC into its frame, the frame pointer
//! into the callee's return link) are performed by the machine, which
//! receives the affected entries from [`ReturnStack::push`] and
//! [`ReturnStack::flush`].

use std::collections::VecDeque;

use fpc_mem::{ByteAddr, WordAddr};

/// One suspended caller recorded by the IFU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReturnEntry {
    /// The caller's local frame.
    pub frame: WordAddr,
    /// The caller's global frame.
    pub gf: WordAddr,
    /// The caller's code base (cached so a fast return restores it
    /// without touching the global frame).
    pub code_base: ByteAddr,
    /// Absolute resume address.
    pub pc: ByteAddr,
    /// The register bank shadowing the caller's frame, if any (§7.1:
    /// "the return stack … keeps track of the bank associated with
    /// each local frame").
    pub bank: Option<usize>,
}

/// Counters kept by the return stack (experiment E5).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReturnStackStats {
    /// Entries pushed (calls while the stack is enabled).
    pub pushes: u64,
    /// Returns served from the stack (fast).
    pub hits: u64,
    /// Returns that found the stack empty (slow path).
    pub misses: u64,
    /// Entries evicted because the stack was full.
    pub evictions: u64,
    /// Whole-stack flushes (unusual XFERs).
    pub flushes: u64,
}

impl ReturnStackStats {
    /// Fraction of returns served from the stack.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The bounded return-prediction stack.
///
/// A capacity of zero disables it (every pop is a miss), which is how
/// the I1/I2 configurations run.
#[derive(Debug, Clone, Default)]
pub struct ReturnStack {
    entries: VecDeque<ReturnEntry>,
    capacity: usize,
    stats: ReturnStackStats,
}

impl ReturnStack {
    /// Creates a stack holding up to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        ReturnStack {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            stats: ReturnStackStats::default(),
        }
    }

    /// Whether the stack is enabled at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Counters.
    pub fn stats(&self) -> ReturnStackStats {
        self.stats
    }

    /// Pushes a caller entry. If the stack is full, the **oldest**
    /// entry is evicted and returned; the machine must then write the
    /// evicted caller's PC into its frame and the frame pointer into
    /// its callee's return link. The evicted entry's callee is the new
    /// bottom entry's frame (the stack is never empty after a push).
    ///
    /// Returns `None` (and records nothing) when disabled.
    pub fn push(&mut self, entry: ReturnEntry) -> Option<ReturnEntry> {
        if !self.enabled() {
            return None;
        }
        self.stats.pushes += 1;
        let evicted = if self.entries.len() == self.capacity {
            self.stats.evictions += 1;
            self.entries.pop_front()
        } else {
            None
        };
        self.entries.push_back(entry);
        evicted
    }

    /// The frame of the current bottom entry — the callee of a
    /// just-evicted entry.
    pub fn bottom_frame(&self) -> Option<WordAddr> {
        self.entries.front().map(|e| e.frame)
    }

    /// Pops the top entry for a return; `None` means the general path
    /// must run. Recorded as a hit or miss only when enabled.
    pub fn pop(&mut self) -> Option<ReturnEntry> {
        if !self.enabled() {
            return None;
        }
        match self.entries.pop_back() {
            Some(e) => {
                self.stats.hits += 1;
                Some(e)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Flushes all entries, newest first — the order in which the
    /// machine must chain return links (current frame's link points at
    /// the newest entry's frame, and so on down).
    pub fn flush(&mut self) -> Vec<ReturnEntry> {
        if self.enabled() && !self.entries.is_empty() {
            self.stats.flushes += 1;
        }
        let mut out: Vec<ReturnEntry> = self.entries.drain(..).collect();
        out.reverse();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: u32) -> ReturnEntry {
        ReturnEntry {
            frame: WordAddr(n * 2),
            gf: WordAddr(0x500),
            code_base: ByteAddr(0),
            pc: ByteAddr(n),
            bank: None,
        }
    }

    #[test]
    fn disabled_stack_never_hits() {
        let mut rs = ReturnStack::new(0);
        assert!(!rs.enabled());
        assert_eq!(rs.push(entry(1)), None);
        assert_eq!(rs.pop(), None);
        assert_eq!(rs.stats().pushes, 0);
        assert_eq!(rs.stats().misses, 0);
    }

    #[test]
    fn lifo_hits() {
        let mut rs = ReturnStack::new(4);
        rs.push(entry(1));
        rs.push(entry(2));
        assert_eq!(rs.pop().unwrap().pc, ByteAddr(2));
        assert_eq!(rs.pop().unwrap().pc, ByteAddr(1));
        assert!(rs.pop().is_none());
        let s = rs.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn overflow_evicts_oldest() {
        let mut rs = ReturnStack::new(2);
        assert!(rs.push(entry(1)).is_none());
        assert!(rs.push(entry(2)).is_none());
        let ev = rs.push(entry(3)).unwrap();
        assert_eq!(ev.pc, ByteAddr(1), "oldest evicted");
        assert_eq!(rs.bottom_frame(), Some(entry(2).frame), "callee of evicted");
        assert_eq!(rs.stats().evictions, 1);
        // Deep returns: 3 and 2 hit, then the stack is empty.
        assert_eq!(rs.pop().unwrap().pc, ByteAddr(3));
        assert_eq!(rs.pop().unwrap().pc, ByteAddr(2));
        assert!(rs.pop().is_none());
    }

    #[test]
    fn flush_returns_newest_first() {
        let mut rs = ReturnStack::new(4);
        rs.push(entry(1));
        rs.push(entry(2));
        rs.push(entry(3));
        let flushed = rs.flush();
        let pcs: Vec<u32> = flushed.iter().map(|e| e.pc.0).collect();
        assert_eq!(pcs, vec![3, 2, 1]);
        assert_eq!(rs.depth(), 0);
        assert_eq!(rs.stats().flushes, 1);
        // Flushing an empty stack is free and uncounted.
        assert!(rs.flush().is_empty());
        assert_eq!(rs.stats().flushes, 1);
    }
}
