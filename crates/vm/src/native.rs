//! Tier-5 native execution: certificate-licensed direct-threaded
//! compilation of hot procedure bodies.
//!
//! The dispatch ladder so far (byte → predecode → +inline XFER cache →
//! +fusion) still pays an interpretive dispatch per step. This module
//! adds a fifth rung: hot procedure bodies are compiled once into a
//! chain of pre-monomorphized host handlers ([`NOp`]) with operands
//! inlined and jump targets resolved to op indices — direct-threaded
//! code in safe Rust, no runtime codegen.
//!
//! # Licensing
//!
//! The tier only runs under a [`NativeLicense`], normally minted from a
//! clean `fpc_verify::Certificate`. The license carries the verifier's
//! whole-image stack-depth bound; arming fails unless that bound fits
//! the machine's configured stack limit. Every event that would lapse a
//! check-elision certificate (trap/fault-handler install, `unbind`,
//! `relocate`, `replace_proc`) also permanently disarms the native tier
//! and marks the certificate premises broken, so re-arming without
//! re-verification is impossible.
//!
//! # Charge-not-perform
//!
//! Native handlers keep every simulated counter bit-identical to byte
//! dispatch: fast handlers charge exactly the cycles, memory references
//! and jump-refills the interpreter would, and perform the same counted
//! [`fpc_mem::Memory`] traffic. Anything with non-trivial accounting
//! (calls, returns, XFER, traps, heap ops, diverted bank references)
//! falls back to the interpreter's own `step_one`, instruction by
//! instruction, inside the native burst.
//!
//! # Deoptimization
//!
//! Compiled code is keyed by [`TableKey`] (code version × watched-table
//! generation). A mismatch at burst entry flushes every compiled body
//! (invocation counts survive, so hot bodies recompile); a store that
//! bumps the generation *inside* a burst exits the burst at the next
//! instruction boundary, which is also a restartable-fault boundary.

use std::sync::Arc;

use fpc_core::TableKey;
use fpc_isa::Instr;
use fpc_stats::Histogram;

/// License to run the native tier, normally obtained from
/// `fpc_verify::Certificate::native_license()`.
///
/// Carries the verifier's proven whole-image operand-stack bound and
/// the number of procedures the proof covers. `Machine::arm_native`
/// refuses a license whose bound exceeds the configured stack depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NativeLicense {
    max_stack_depth: u32,
    procs: usize,
}

impl NativeLicense {
    /// Packages a verifier-proven stack bound covering `procs`
    /// procedures. Prefer minting licenses through
    /// `fpc_verify::Certificate::native_license()`, which only exists
    /// for diagnostic-free reports.
    pub fn new(max_stack_depth: u32, procs: usize) -> Self {
        NativeLicense {
            max_stack_depth,
            procs,
        }
    }

    /// The proven whole-image operand-stack bound.
    pub fn max_stack_depth(&self) -> u32 {
        self.max_stack_depth
    }

    /// Number of procedures covered by the proof.
    pub fn procs(&self) -> usize {
        self.procs
    }
}

/// Host-side observability counters for the native tier.
///
/// Like `FusionStats`, these describe the *host* acceleration and are
/// deliberately excluded from simulated-counter fingerprints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NativeStats {
    /// Whether the tier is currently armed.
    pub armed: bool,
    /// Compiled bodies currently resident.
    pub compiled_procs: usize,
    /// Total successful body compilations (including recompiles).
    pub compiles: u64,
    /// Native burst entries from the run loop.
    pub entries: u64,
    /// Instructions retired by fast native handlers.
    pub native_instrs: u64,
    /// Instructions retired via the interpreter fallback inside bursts.
    pub interp_ops: u64,
    /// Transient deopts: whole-tier flushes on a [`TableKey`] mismatch.
    pub flushes: u64,
    /// Permanent deopts: certificate-lapse disarms.
    pub disarms: u64,
}

/// One direct-threaded host handler with operands inlined.
///
/// Fast variants replicate the interpreter's execute arm *and* its
/// accounting exactly; everything else lowers to [`NOp::Interp`].
/// Memory-touching fast ops only exist when register banks are off
/// (`fast_mem`), since bank shadow hits divert accounting.
#[derive(Debug, Clone, Copy)]
pub(crate) enum NOp {
    /// `LoadImm`: push a literal.
    Imm(u16),
    /// `LoadLocal` (banks off): one counted read of the local slot.
    LocalRd(u8),
    /// `StoreLocal` (banks off): one counted write of the local slot.
    LocalWr(u8),
    /// `LoadLocalAddr` (banks off): pure address push.
    LocalAddr(u8),
    /// `LoadGlobal`: one counted read of the global slot.
    GlobalRd(u8),
    /// `StoreGlobal`: one counted write; may bump the table generation.
    GlobalWr(u8),
    /// `LoadGlobalAddr`: pure address push.
    GlobalAddr(u8),
    /// `Read` (banks off): counted read at a popped address.
    Read,
    /// `Write` (banks off): counted write; may bump the generation.
    Write,
    /// `LoadIndex` (banks off): counted read at base + index.
    LoadIndex,
    /// `StoreIndex` (banks off): counted write; may bump the generation.
    StoreIndex,
    Add,
    Sub,
    Mul,
    Neg,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    CmpEq,
    CmpNe,
    CmpLt,
    CmpLe,
    CmpGt,
    CmpGe,
    AddImm(u8),
    Dup,
    Drop,
    Exch,
    Out,
    Noop,
    /// Unconditional jump to a resolved op index.
    Jmp(u32),
    /// Pop; jump to the resolved op index if zero.
    Jz(u32),
    /// Pop; jump to the resolved op index if non-zero.
    Jnz(u32),
    /// Interpreter fallback: run this instruction through `step_one`.
    Interp(Instr, u8),
    /// Call/return fast path: full interpreter semantics and
    /// accounting, minus the handler-attribution bookkeeping that is
    /// provably dead while the tier is armed (arming requires no
    /// installed trap or fault handlers).
    Call(Instr, u8),
    /// Fell off the end of the compiled body; resume interpretation.
    Exit,
    /// Fused `LoadLocal n; LoadImm v` — two instructions, one dispatch.
    Ld2(u8, u16),
    /// Fused `LoadLocal n; LoadLocal m`.
    LdLd(u8, u8),
    /// Fused `LoadImm v; Add`.
    AddIW(u16),
    /// Fused `LoadImm v; Sub`.
    SubIW(u16),
    /// Fused compare + `JumpZero`: pops both operands and jumps when
    /// the comparison is false (the interpreter would push 0 and `Jz`
    /// would take it).
    CmpJz(Cmp, u32),
    /// Fused `LoadLocal n; LoadImm v; Sub` — push `local − v`.
    LdSubI(u8, u16),
    /// Fused `LoadLocal n; LoadImm v; Add` — push `local + v`.
    LdAddI(u8, u16),
    /// Fused guard `LoadLocal n; LoadImm v; cmp; JumpZero`: four
    /// instructions, one dispatch, zero net stack traffic.
    LdICmpJz(u8, u16, Cmp, u32),
    /// Fused guard `LoadLocal n; LoadLocal m; cmp; JumpZero`.
    LdLdCmpJz(u8, u8, Cmp, u32),
    /// Fused `LoadLocal n; Exch; Add` — pop `t`, push `local + t` (the
    /// accumulate-result idiom in recursive epilogues).
    LdXAdd(u8),
    /// Fused argument push + transfer: `LoadLocal n; <call>`. The bare
    /// `u8` is the byte offset of the call within the run (the encoded
    /// length of the swallowed prefix), needed to reconstruct the
    /// call's architectural instruction start.
    LdCall(u8, u8, Instr, u8),
    /// Fused `LoadLocal n; LoadImm v; Sub; <call>` — the dominant
    /// argument-setup shape of recursive call sites.
    LdSubICall(u8, u16, u8, Instr, u8),
    /// Fused `LoadLocal n; LoadImm v; Add; <call>`.
    LdAddICall(u8, u16, u8, Instr, u8),
    /// Fused `LoadLocal n; LoadLocal m; <call>` — two-argument setup.
    LdLdCall(u8, u8, u8, Instr, u8),
    /// Fused `LoadLocal n; Exch; Add; <call>` — accumulate then return.
    LdXAddCall(u8, u8, Instr, u8),
    /// Fused `StoreLocal n; Jump` — the store-result-and-loop tail.
    WrJmp(u8, u32),
}

/// Comparison selector for the fused [`NOp::CmpJz`] handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cmp {
    #[inline]
    pub fn eval(self, a: i16, b: i16) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
        }
    }
}

/// A compiled procedure body. Immutable once built; shared with the
/// run loop via [`Arc`] so a burst can hold it across `&mut Machine`
/// calls without re-indexing the tier each op.
#[derive(Debug, Default)]
pub(crate) struct NativeProc {
    /// First body byte (absolute code address).
    pub start: u32,
    /// Op index for each body-relative byte offset; `u32::MAX` marks
    /// mid-instruction bytes and undecodable suffixes.
    pub off_to_ip: Vec<u32>,
    /// The direct-threaded handler chain; last op is always [`NOp::Exit`].
    pub ops: Vec<NOp>,
    /// Absolute byte address of each op (the [`NOp::Exit`] entry holds
    /// the fall-off address), used to materialize `pc` on burst exit.
    pub offs: Vec<u32>,
}

/// `pc_map` sentinel: byte has been offered for compilation and refused.
const REFUSED: u16 = u16::MAX;

/// The per-machine native tier: hotness counters, the compiled-body
/// table, and the coherence key that deoptimizes it.
#[derive(Debug)]
pub(crate) struct NativeTier {
    threshold: u32,
    armed: bool,
    /// Certificate premises still hold (no handler installs, unbinds,
    /// relocations or patches since load). Once false, arming is
    /// permanently refused.
    cert_ok: bool,
    /// Coherence snapshot guarding every compiled body.
    key: TableKey,
    procs: Vec<Arc<NativeProc>>,
    /// Code byte → compiled proc index + 1; 0 = uncovered, [`REFUSED`]
    /// = offered and declined (stops the pending queue from cycling).
    pc_map: Vec<u16>,
    /// Invocation counts per header byte address, and call-site counts
    /// per return-pc byte address (so loop-resident caller bodies get
    /// hot even when invoked once). Disjoint index spaces, one vector.
    counts: Vec<u32>,
    /// Byte addresses whose enclosing body wants compilation.
    pending: Vec<u32>,
    pub compiles: u64,
    pub entries: u64,
    pub native_instrs: u64,
    pub interp_ops: u64,
    pub flushes: u64,
    pub disarms: u64,
}

impl NativeTier {
    pub fn new(threshold: u32) -> Self {
        NativeTier {
            // A zero threshold would trigger on count 0; clamp to 1.
            threshold: threshold.max(1),
            armed: false,
            cert_ok: true,
            // Sentinel key: the first sync always flushes, sizing the
            // maps to the live code store.
            key: TableKey::new(u64::MAX, u64::MAX),
            procs: Vec::new(),
            pc_map: Vec::new(),
            counts: Vec::new(),
            pending: Vec::new(),
            compiles: 0,
            entries: 0,
            native_instrs: 0,
            interp_ops: 0,
            flushes: 0,
            disarms: 0,
        }
    }

    pub fn cert_ok(&self) -> bool {
        self.cert_ok
    }

    pub fn armed(&self) -> bool {
        self.armed
    }

    pub fn arm(&mut self) {
        self.armed = true;
    }

    /// Permanent deopt: the certificate premises lapsed.
    pub fn disarm(&mut self) {
        if self.armed {
            self.disarms += 1;
        }
        self.armed = false;
        self.cert_ok = false;
        self.procs.clear();
        self.pc_map.clear();
        self.pending.clear();
    }

    /// Transient deopt check at burst entry: on a key mismatch, flush
    /// every compiled body (counts survive so hot bodies recompile).
    pub fn sync(&mut self, code_version: u64, table_gen: u64, code_len: u32) {
        if self.key.matches(code_version, table_gen) {
            return;
        }
        if !self.procs.is_empty() || !self.pc_map.is_empty() {
            self.flushes += 1;
        }
        self.key = TableKey::new(code_version, table_gen);
        self.procs.clear();
        self.pc_map.clear();
        self.pc_map.resize(code_len as usize, 0);
        self.pending.clear();
        if self.counts.len() < code_len as usize {
            self.counts.resize(code_len as usize, 0);
        }
        // Counts survive the flush, but `bump` queues a probe only at
        // the exact threshold crossing — re-queue every already-hot
        // site so its body recompiles. Each count may be a header or a
        // return pc; probe both interpretations (`candidate` and
        // `compile` discard the one that is not a body).
        if self.armed {
            for (idx, &c) in self.counts.iter().enumerate() {
                if c >= self.threshold {
                    let idx = idx as u32;
                    self.pending.push(idx);
                    self.pending.push(idx + fpc_core::layout::PROC_HEADER_BYTES);
                }
            }
        }
    }

    /// Hotness hook, called on every resolved procedure call. `header`
    /// is the callee's header address; `ret_pc` is the return address,
    /// which lies inside the *caller's* body and stands in for the call
    /// site.
    #[inline]
    pub fn note_call(&mut self, header: u32, ret_pc: u32) {
        if !self.armed {
            return;
        }
        let body = header + fpc_core::layout::PROC_HEADER_BYTES;
        self.bump(header, body);
        self.bump(ret_pc, ret_pc);
    }

    #[inline]
    fn bump(&mut self, idx: u32, probe: u32) {
        let Some(c) = self.counts.get_mut(idx as usize) else {
            return;
        };
        *c += 1;
        // Exact-crossing trigger: one probe per site per flush epoch,
        // so warm calls pay the count increment and nothing else
        // (`sync` re-queues hot sites after a flush). `candidate`
        // filters stale probes at compile time.
        if *c == self.threshold {
            self.pending.push(probe);
        }
    }

    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    pub fn take_pending(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.pending)
    }

    /// True when `probe` is still a compilation candidate (not covered
    /// by a compiled body, not previously refused).
    pub fn candidate(&self, probe: u32) -> bool {
        self.pc_map.get(probe as usize).is_some_and(|&p| p == 0)
    }

    /// Marks `probe` refused so it is never re-queued (until the next
    /// flush re-zeroes the map).
    pub fn refuse(&mut self, probe: u32) {
        if let Some(p) = self.pc_map.get_mut(probe as usize) {
            if *p == 0 {
                *p = REFUSED;
            }
        }
    }

    /// Compiles `[body, end)` and maps its bytes. Returns false when
    /// the body is unusable (nothing decodes) or the table is full.
    pub fn compile(&mut self, code: &[u8], body: u32, end: u32, fast_mem: bool) -> bool {
        if end <= body || self.procs.len() >= (REFUSED - 1) as usize {
            return false;
        }
        let proc = compile_body(code, body, end, fast_mem);
        if proc.ops.len() <= 1 {
            return false;
        }
        if std::env::var_os("FPC_NATIVE_DUMP").is_some() {
            eprintln!("native compile [{body:#06x}..{end:#06x}):");
            for (i, op) in proc.ops.iter().enumerate() {
                eprintln!("  {i:4} @{:#06x}  {op:?}", proc.offs[i]);
            }
        }
        let idx = self.procs.len() as u16 + 1;
        for a in body..end {
            if let Some(p) = self.pc_map.get_mut(a as usize) {
                *p = idx;
            }
        }
        self.procs.push(Arc::new(proc));
        self.compiles += 1;
        true
    }

    /// Resolves a code address to a compiled (proc, op index) entry
    /// point. `None` off-coverage or mid-instruction.
    #[inline]
    pub fn locate(&self, pc: u32) -> Option<(usize, u32)> {
        let p = *self.pc_map.get(pc as usize)?;
        if p == 0 || p == REFUSED {
            return None;
        }
        let proc = &self.procs[(p - 1) as usize];
        let ip = *proc.off_to_ip.get(pc.wrapping_sub(proc.start) as usize)?;
        if ip == u32::MAX {
            return None;
        }
        Some(((p - 1) as usize, ip))
    }

    /// Clones the shared handle for a located proc.
    #[inline]
    pub fn proc(&self, idx: usize) -> Arc<NativeProc> {
        Arc::clone(&self.procs[idx])
    }

    /// Invocation count for a header address.
    pub fn count_of(&self, addr: u32) -> u32 {
        self.counts.get(addr as usize).copied().unwrap_or(0)
    }

    pub fn stats(&self) -> NativeStats {
        NativeStats {
            armed: self.armed,
            compiled_procs: self.procs.len(),
            compiles: self.compiles,
            entries: self.entries,
            native_instrs: self.native_instrs,
            interp_ops: self.interp_ops,
            flushes: self.flushes,
            disarms: self.disarms,
        }
    }

    /// Materializes the invocation counts for the given header
    /// addresses as an `fpc-stats` histogram (value = header address,
    /// weight = calls), ready for `top_k` hotness ranking.
    pub fn hotness(&self, headers: impl IntoIterator<Item = u32>) -> Histogram {
        let mut h = Histogram::new();
        for header in headers {
            let c = self.count_of(header);
            if c > 0 {
                h.record_n(header as u64, c as u64);
            }
        }
        h
    }
}

/// Lowers one decoded body into a direct-threaded chain. Stops at the
/// first undecodable byte (that suffix stays interpreter-only).
fn compile_body(code: &[u8], body: u32, end: u32, fast_mem: bool) -> NativeProc {
    let mut decoded: Vec<(u32, Instr, u8)> = Vec::new();
    for step in fpc_isa::walk(code, body as usize, end as usize) {
        match step {
            Ok((at, instr, len)) => decoded.push((at as u32, instr, len as u8)),
            Err(_) => break,
        }
    }
    let mut off_to_ip = vec![u32::MAX; (end - body) as usize];
    for (ip, &(at, _, _)) in decoded.iter().enumerate() {
        off_to_ip[(at - body) as usize] = ip as u32;
    }
    let mut ops = Vec::with_capacity(decoded.len() + 1);
    let mut offs = Vec::with_capacity(decoded.len() + 1);
    for &(at, instr, len) in &decoded {
        offs.push(at);
        ops.push(lower(instr, len, at, body, end, &off_to_ip, fast_mem));
    }
    offs.push(decoded.last().map_or(body, |&(at, _, len)| at + len as u32));
    ops.push(NOp::Exit);
    fuse(NativeProc {
        start: body,
        off_to_ip,
        ops,
        offs,
    })
}

/// Superinstruction pass: greedily fuses the longest known run of
/// adjacent fast ops at each position into a single dispatch (the
/// native analogue of the rung-4 pair fusion, extended to the 3- and
/// 4-instruction idioms that dominate call-dense code: `local − const`
/// argument setup and `local cmp operand; branch` guards). A run only
/// forms when none of its non-first ops is a jump target or an
/// interpreter re-entry point (the op after an [`NOp::Interp`] or
/// [`NOp::Call`]), so every architecturally reachable boundary stays
/// mapped; swallowed ops' byte offsets are unmapped, which at worst
/// costs one interpreted step before the next mapped boundary
/// re-enters.
fn fuse(p: NativeProc) -> NativeProc {
    let n = p.ops.len();
    let mut blocked = vec![false; n];
    for (i, op) in p.ops.iter().enumerate() {
        match *op {
            NOp::Jmp(t) | NOp::Jz(t) | NOp::Jnz(t) => blocked[t as usize] = true,
            // Returns land on the op after a call, and the interpreter
            // resumes after a fallback op: both must stay mapped.
            NOp::Interp(..) | NOp::Call(..) if i + 1 < n => blocked[i + 1] = true,
            _ => {}
        }
    }
    // Pattern length chosen at each start index (0 = swallowed).
    let mut span = vec![0u8; n];
    let mut i = 0;
    while i < n {
        let len = match_len(&p.ops, &blocked, i);
        span[i] = len;
        i += len as usize;
    }
    // Old op index → new op index; swallowed ops disappear.
    let mut remap = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut i = 0;
    while i < n {
        remap[i] = next;
        next += 1;
        i += span[i] as usize;
    }
    let mut off_to_ip = p.off_to_ip;
    for x in off_to_ip.iter_mut() {
        if *x != u32::MAX {
            *x = remap[*x as usize];
        }
    }
    let mut ops = Vec::with_capacity(next as usize);
    let mut offs = Vec::with_capacity(next as usize);
    let mut i = 0;
    while i < n {
        offs.push(p.offs[i]);
        let run = i..i + span[i] as usize;
        ops.push(combine(&p.ops[run.clone()], &p.offs[run], &remap));
        i += span[i] as usize;
    }
    NativeProc {
        start: p.start,
        off_to_ip,
        ops,
        offs,
    }
}

fn cmp_of(op: NOp) -> Option<Cmp> {
    match op {
        NOp::CmpEq => Some(Cmp::Eq),
        NOp::CmpNe => Some(Cmp::Ne),
        NOp::CmpLt => Some(Cmp::Lt),
        NOp::CmpLe => Some(Cmp::Le),
        NOp::CmpGt => Some(Cmp::Gt),
        NOp::CmpGe => Some(Cmp::Ge),
        _ => None,
    }
}

/// Longest fusible run starting at `i`; 1 means no fusion.
fn match_len(ops: &[NOp], blocked: &[bool], i: usize) -> u8 {
    let w = &ops[i..];
    let clear = |upto: usize| (1..=upto).all(|k| !blocked.get(i + k).copied().unwrap_or(true));
    if w.len() >= 4 && clear(3) {
        if let [NOp::LocalRd(_), NOp::Imm(_) | NOp::LocalRd(_), c, NOp::Jz(_), ..] = *w {
            if cmp_of(c).is_some() {
                return 4;
            }
        }
        if matches!(
            *w,
            [
                NOp::LocalRd(_),
                NOp::Imm(_),
                NOp::Sub | NOp::Add,
                NOp::Call(..),
                ..
            ] | [NOp::LocalRd(_), NOp::Exch, NOp::Add, NOp::Call(..), ..]
        ) {
            return 4;
        }
    }
    if w.len() >= 3
        && clear(2)
        && matches!(
            *w,
            [NOp::LocalRd(_), NOp::Imm(_), NOp::Sub | NOp::Add, ..]
                | [NOp::LocalRd(_), NOp::LocalRd(_), NOp::Call(..), ..]
                | [NOp::LocalRd(_), NOp::Exch, NOp::Add, ..]
        )
    {
        return 3;
    }
    if w.len() >= 2 && clear(1) && pairable(w[0], w[1]) {
        return 2;
    }
    1
}

fn pairable(a: NOp, b: NOp) -> bool {
    matches!(
        (a, b),
        (NOp::LocalRd(_), NOp::Imm(_))
            | (NOp::LocalRd(_), NOp::LocalRd(_))
            | (NOp::LocalRd(_), NOp::Call(..))
            | (NOp::LocalWr(_), NOp::Jmp(_))
            | (NOp::Imm(_), NOp::Add)
            | (NOp::Imm(_), NOp::Sub)
            | (
                NOp::CmpEq | NOp::CmpNe | NOp::CmpLt | NOp::CmpLe | NOp::CmpGt | NOp::CmpGe,
                NOp::Jz(_)
            )
    )
}

/// `offs` is the byte-offset slice matching `run`; call-terminated
/// fusions record the call's distance from the run start so the burst
/// can reconstruct the call's architectural instruction address.
fn combine(run: &[NOp], offs: &[u32], remap: &[u32]) -> NOp {
    let delta = || (offs[run.len() - 1] - offs[0]) as u8;
    match *run {
        [op] => retarget(op, remap),
        [NOp::LocalRd(n), NOp::Imm(v), c, NOp::Jz(t)] => {
            NOp::LdICmpJz(n, v, cmp_of(c).expect("matched"), remap[t as usize])
        }
        [NOp::LocalRd(n), NOp::LocalRd(m), c, NOp::Jz(t)] => {
            NOp::LdLdCmpJz(n, m, cmp_of(c).expect("matched"), remap[t as usize])
        }
        [NOp::LocalRd(n), NOp::Imm(v), NOp::Sub, NOp::Call(instr, len)] => {
            NOp::LdSubICall(n, v, delta(), instr, len)
        }
        [NOp::LocalRd(n), NOp::Imm(v), NOp::Add, NOp::Call(instr, len)] => {
            NOp::LdAddICall(n, v, delta(), instr, len)
        }
        [NOp::LocalRd(n), NOp::Exch, NOp::Add, NOp::Call(instr, len)] => {
            NOp::LdXAddCall(n, delta(), instr, len)
        }
        [NOp::LocalRd(n), NOp::Imm(v), NOp::Sub] => NOp::LdSubI(n, v),
        [NOp::LocalRd(n), NOp::Imm(v), NOp::Add] => NOp::LdAddI(n, v),
        [NOp::LocalRd(n), NOp::LocalRd(m), NOp::Call(instr, len)] => {
            NOp::LdLdCall(n, m, delta(), instr, len)
        }
        [NOp::LocalRd(n), NOp::Exch, NOp::Add] => NOp::LdXAdd(n),
        [NOp::LocalRd(n), NOp::Imm(v)] => NOp::Ld2(n, v),
        [NOp::LocalRd(n), NOp::LocalRd(m)] => NOp::LdLd(n, m),
        [NOp::LocalRd(n), NOp::Call(instr, len)] => NOp::LdCall(n, delta(), instr, len),
        [NOp::LocalWr(n), NOp::Jmp(t)] => NOp::WrJmp(n, remap[t as usize]),
        [NOp::Imm(v), NOp::Add] => NOp::AddIW(v),
        [NOp::Imm(v), NOp::Sub] => NOp::SubIW(v),
        [c, NOp::Jz(t)] => NOp::CmpJz(cmp_of(c).expect("pairable matched"), remap[t as usize]),
        _ => unreachable!("match_len() admitted an uncombinable run"),
    }
}

fn retarget(op: NOp, remap: &[u32]) -> NOp {
    match op {
        NOp::Jmp(t) => NOp::Jmp(remap[t as usize]),
        NOp::Jz(t) => NOp::Jz(remap[t as usize]),
        NOp::Jnz(t) => NOp::Jnz(remap[t as usize]),
        other => other,
    }
}

fn lower(
    instr: Instr,
    len: u8,
    at: u32,
    body: u32,
    end: u32,
    off_to_ip: &[u32],
    fast_mem: bool,
) -> NOp {
    // Displacements are from instruction start; a target outside the
    // body (or mid-instruction) goes through the interpreter, which
    // re-enters native code if the landing pad is compiled.
    let target = |d: i32| -> Option<u32> {
        let t = at as i64 + d as i64;
        if t < body as i64 || t >= end as i64 {
            return None;
        }
        let ip = off_to_ip[(t as u32 - body) as usize];
        (ip != u32::MAX).then_some(ip)
    };
    match instr {
        Instr::LoadImm(v) => NOp::Imm(v),
        Instr::LoadLocal(n) if fast_mem => NOp::LocalRd(n),
        Instr::StoreLocal(n) if fast_mem => NOp::LocalWr(n),
        Instr::LoadLocalAddr(n) if fast_mem => NOp::LocalAddr(n),
        Instr::LoadGlobal(n) => NOp::GlobalRd(n),
        Instr::StoreGlobal(n) => NOp::GlobalWr(n),
        Instr::LoadGlobalAddr(n) => NOp::GlobalAddr(n),
        Instr::Read if fast_mem => NOp::Read,
        Instr::Write if fast_mem => NOp::Write,
        Instr::LoadIndex if fast_mem => NOp::LoadIndex,
        Instr::StoreIndex if fast_mem => NOp::StoreIndex,
        Instr::Add => NOp::Add,
        Instr::Sub => NOp::Sub,
        Instr::Mul => NOp::Mul,
        Instr::Neg => NOp::Neg,
        Instr::And => NOp::And,
        Instr::Or => NOp::Or,
        Instr::Xor => NOp::Xor,
        Instr::Shl => NOp::Shl,
        Instr::Shr => NOp::Shr,
        Instr::CmpEq => NOp::CmpEq,
        Instr::CmpNe => NOp::CmpNe,
        Instr::CmpLt => NOp::CmpLt,
        Instr::CmpLe => NOp::CmpLe,
        Instr::CmpGt => NOp::CmpGt,
        Instr::CmpGe => NOp::CmpGe,
        Instr::AddImm(n) => NOp::AddImm(n),
        Instr::Dup => NOp::Dup,
        Instr::Drop => NOp::Drop,
        Instr::Exch => NOp::Exch,
        Instr::Out => NOp::Out,
        Instr::Noop => NOp::Noop,
        Instr::Jump(d) => target(d).map_or(NOp::Interp(instr, len), NOp::Jmp),
        Instr::JumpZero(d) => target(d).map_or(NOp::Interp(instr, len), NOp::Jz),
        Instr::JumpNotZero(d) => target(d).map_or(NOp::Interp(instr, len), NOp::Jnz),
        // Calls and returns dominate the interpreter-fallback share on
        // call-dense code; they get the streamlined transfer handler.
        Instr::LocalCall(_)
        | Instr::ExternalCall(_)
        | Instr::DirectCall(_)
        | Instr::ShortDirectCall(_)
        | Instr::Ret => NOp::Call(instr, len),
        // Division traps, XFER, contexts, processes, heap and module
        // ops all carry their own accounting; interpret them.
        _ => NOp::Interp(instr, len),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body_bytes(instrs: &[Instr]) -> Vec<u8> {
        let mut out = Vec::new();
        for i in instrs {
            i.encode(&mut out);
        }
        out
    }

    #[test]
    fn compile_body_lowers_and_maps_offsets() {
        let bytes = body_bytes(&[Instr::LoadImm(7), Instr::AddImm(1), Instr::Out, Instr::Ret]);
        let end = bytes.len() as u32;
        let p = compile_body(&bytes, 0, end, true);
        assert!(matches!(p.ops[0], NOp::Imm(7)));
        assert!(matches!(p.ops[1], NOp::AddImm(1)));
        assert!(matches!(p.ops[2], NOp::Out));
        assert!(matches!(p.ops[3], NOp::Call(Instr::Ret, 1)));
        assert!(matches!(p.ops[4], NOp::Exit));
        assert_eq!(p.off_to_ip[0], 0);
        // LoadImm is 3 bytes; its interior bytes must be unmapped.
        assert_eq!(p.off_to_ip[1], u32::MAX);
        assert_eq!(*p.offs.last().unwrap(), end);
    }

    #[test]
    fn in_body_jumps_resolve_mem_ops_gate_on_banks() {
        // 0: LoadLocal 0 (1 byte, LL0) ; 1: JumpZero back to it.
        let bytes = body_bytes(&[Instr::LoadLocal(0), Instr::JumpZero(-1)]);
        let end = bytes.len() as u32;
        let fast = compile_body(&bytes, 0, end, true);
        assert!(matches!(fast.ops[0], NOp::LocalRd(0)));
        assert!(matches!(fast.ops[1], NOp::Jz(0)));
        let banked = compile_body(&bytes, 0, end, false);
        assert!(matches!(banked.ops[0], NOp::Interp(Instr::LoadLocal(0), _)));
        // Out-of-body jump falls back to the interpreter.
        let bytes = body_bytes(&[Instr::Jump(100)]);
        let p = compile_body(&bytes, 0, bytes.len() as u32, true);
        assert!(matches!(p.ops[0], NOp::Interp(Instr::Jump(100), _)));
    }

    #[test]
    fn tier_counts_compiles_and_locates() {
        // LoadImm(0x1234) takes the 3-byte LIW form, giving the body
        // interior (mid-instruction) bytes.
        let bytes = body_bytes(&[Instr::LoadImm(0x1234), Instr::Out, Instr::Ret]);
        let end = bytes.len() as u32;
        let mut t = NativeTier::new(2);
        t.arm();
        t.sync(1, 0, end);
        // Pretend a header at "end" would precede the body; count the
        // body via its return-pc side.
        t.note_call(0, 1); // header idx 0 counts, probe = PROC_HEADER_BYTES (off-map ok)
        assert!(!t.has_pending());
        t.note_call(0, 1);
        // ret_pc probe 1 is mid-LoadImm but still queues its body.
        assert!(t.has_pending());
        let pending = t.take_pending();
        for probe in pending {
            if t.candidate(probe) && !t.compile(&bytes, 0, end, true) {
                t.refuse(probe);
            }
        }
        assert_eq!(t.stats().compiled_procs, 1);
        assert!(t.locate(0).is_some());
        assert!(t.locate(1).is_none(), "mid-instruction bytes don't enter");
        // A key change flushes bodies but keeps counts.
        t.sync(2, 0, end);
        assert_eq!(t.stats().compiled_procs, 0);
        assert_eq!(t.count_of(0), 2);
        assert_eq!(t.stats().flushes, 1);
        // Disarm is permanent.
        t.disarm();
        assert!(!t.armed() && !t.cert_ok());
        assert_eq!(t.stats().disarms, 1);
    }

    #[test]
    fn superinstructions_fuse_and_preserve_boundaries() {
        // LoadLocal 0 ; LoadImm 2 ; CmpLt ; JumpZero over Out to Ret —
        // the fib guard shape. Greedy pairing gives Ld2 + CmpJz.
        let bytes = body_bytes(&[
            Instr::LoadLocal(0),
            Instr::LoadImm(2),
            Instr::CmpLt,
            Instr::JumpZero(2),
            Instr::Out,
            Instr::Ret,
        ]);
        let p = compile_body(&bytes, 0, bytes.len() as u32, true);
        // The whole guard collapses into one dispatch.
        assert!(matches!(p.ops[0], NOp::LdICmpJz(0, 2, Cmp::Lt, 2)));
        assert!(matches!(p.ops[1], NOp::Out));
        assert!(matches!(p.ops[2], NOp::Call(Instr::Ret, 1)));
        // The run start stays mapped; swallowed ops do not.
        assert_eq!(p.off_to_ip[0], 0);
        assert_eq!(p.off_to_ip[1], u32::MAX, "swallowed op is unmapped");
        assert_eq!(p.off_to_ip[3], u32::MAX, "swallowed CmpLt is unmapped");
        // offs of a fused run is the first element's address.
        assert_eq!(p.offs[0], 0);
        assert_eq!(p.offs[1], 5, "Out follows the 5-byte guard");

        // A jump landing on the would-be second blocks the pair.
        let bytes = body_bytes(&[Instr::LoadLocal(0), Instr::LoadImm(7), Instr::Jump(-2)]);
        let p = compile_body(&bytes, 0, bytes.len() as u32, true);
        assert!(
            matches!(p.ops[0], NOp::LocalRd(0)),
            "jump-target second must not fuse"
        );
        assert!(matches!(p.ops[1], NOp::Imm(7)));
        assert!(matches!(p.ops[2], NOp::Jmp(1)));
    }

    #[test]
    fn refused_probes_do_not_requeue() {
        let mut t = NativeTier::new(1);
        t.arm();
        t.sync(1, 0, 8);
        t.note_call(100, 4); // header out of counts range is ignored; site 4 counts
        assert!(t.has_pending());
        for probe in t.take_pending() {
            t.refuse(probe);
        }
        t.note_call(100, 4);
        assert!(!t.has_pending(), "refused bytes never re-queue");
    }
}
