//! The predecoded instruction stream: a host-side translation cache.
//!
//! The Mesa encoding optimises for *space* — one-byte forms for the
//! common cases, multi-byte escapes for the rest — which means the
//! byte-at-a-time decoder runs a guard chain on every simulated
//! instruction. A real machine pays that once per instruction *fetch*;
//! an interpreter that re-parses the same hot loop body billions of
//! times pays it over and over. This module translates each code
//! segment once into a vector of [`DecodedOp`]s and lets
//! [`crate::Machine::step`] dispatch straight off the decoded form.
//!
//! **Invariant: the simulated machine cannot tell.** Decoding reads
//! the raw byte slice and makes no counted memory references, so a
//! predecoded run produces bit-identical cycle and reference counters
//! to a byte-decoded run (`tests/predecode_parity.rs` enforces this
//! over the whole corpus, including mid-run code mutation). The cache
//! is pure memoisation of a pure function of the code bytes.
//!
//! Coherence is by versioning, not by invalidation hooks: the
//! [`CodeStore`] bumps a counter on every mutation (`append`, `poke`),
//! and every lookup compares it. Code swapping (`relocate_module`) and
//! dynamic procedure replacement (`replace_proc`) therefore invalidate
//! the cache automatically — they mutate the store through those same
//! two entry points.

use fpc_isa::{decode, walk, DecodeError, Instr};
use fpc_mem::CodeStore;

/// One predecoded instruction: the decoded form plus its encoded
/// length (needed to advance the PC exactly as the byte decoder
/// would).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedOp {
    /// The decoded instruction.
    pub instr: Instr,
    /// Encoded length in bytes (1–4).
    pub len: u8,
}

/// Counters describing how the cache earned its keep.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PredecodeStats {
    /// Lookups served from the decoded stream. The cache itself never
    /// maintains this — bumping a counter per instruction is measurable
    /// on the hot path — so it stays zero here; [`crate::Machine`]
    /// derives it as executed instructions minus `lazy_decodes` (every
    /// step performs exactly one lookup, and a lookup that errors never
    /// becomes an executed instruction).
    pub hits: u64,
    /// Lookups that had to decode (then memoise) on the spot.
    pub lazy_decodes: u64,
    /// Instructions decoded by eager segment walks.
    pub eager_ops: u64,
    /// Times the whole cache was discarded because the code changed.
    pub rebuilds: u64,
}

/// A version-keyed map from code byte offsets to decoded instructions.
///
/// `map[offset]` holds the decoded op directly, with `len == 0` for
/// "not translated" — byte offsets that are data (entry vectors,
/// headers) or simply never executed stay untranslated forever. The
/// flat layout makes the hot lookup one indexed load rather than an
/// index table plus a dependent fetch.
#[derive(Debug, Clone)]
pub struct PredecodeCache {
    version: u64,
    map: Vec<DecodedOp>,
    translated: usize,
    stats: PredecodeStats,
}

/// The "untranslated" sentinel: no real instruction has length zero.
const EMPTY: DecodedOp = DecodedOp {
    instr: Instr::Noop,
    len: 0,
};

impl PredecodeCache {
    /// An empty cache; coherent with an empty, never-mutated store.
    pub fn new() -> Self {
        PredecodeCache {
            version: 0,
            map: Vec::new(),
            translated: 0,
            stats: PredecodeStats::default(),
        }
    }

    /// Usage counters.
    pub fn stats(&self) -> PredecodeStats {
        self.stats
    }

    /// Number of distinct instructions currently translated.
    pub fn translated_ops(&self) -> usize {
        self.translated
    }

    /// Discards stale state and re-keys the cache to the store's
    /// current version. No-op when already coherent.
    pub fn sync(&mut self, code: &CodeStore) {
        if self.version == code.version() && self.map.len() == code.bytes().len() {
            return;
        }
        self.version = code.version();
        self.map.clear();
        self.map.resize(code.bytes().len(), EMPTY);
        self.translated = 0;
        self.stats.rebuilds += 1;
    }

    /// Eagerly translates the instruction run in `[start, end)`,
    /// stopping early (silently) at the first undecodable byte — a
    /// range that turns out to hold data is simply left to the lazy
    /// path, which reports the error at the offset actually executed.
    pub fn translate_range(&mut self, code: &CodeStore, start: u32, end: u32) {
        self.sync(code);
        if self.map.get(start as usize).is_some_and(|op| op.len != 0) {
            return; // range already walked
        }
        for triple in walk(code.bytes(), start as usize, end as usize) {
            let Ok((off, instr, len)) = triple else { break };
            self.insert(off, instr, len);
            self.stats.eager_ops += 1;
        }
    }

    /// The hot path: the decoded instruction at `offset`, exactly as
    /// [`fpc_isa::decode`] would produce it.
    ///
    /// # Errors
    ///
    /// The same [`DecodeError`] the byte decoder reports for this
    /// offset.
    #[inline]
    pub fn lookup(&mut self, code: &CodeStore, offset: u32) -> Result<(Instr, usize), DecodeError> {
        if self.version != code.version() {
            self.sync(code);
        }
        if let Some(&op) = self.map.get(offset as usize) {
            if op.len != 0 {
                return Ok((op.instr, op.len as usize));
            }
        }
        // Lazy path: decode, memoise, return. Reached for code outside
        // any walked segment (e.g. activations finishing on a moved
        // segment's old copy) and for genuine decode errors.
        let (instr, len) = decode(code.bytes(), offset as usize)?;
        self.stats.lazy_decodes += 1;
        self.insert(offset as usize, instr, len);
        Ok((instr, len))
    }

    fn insert(&mut self, offset: usize, instr: Instr, len: usize) {
        if offset < self.map.len() {
            self.map[offset] = DecodedOp {
                instr,
                len: len as u8,
            };
            self.translated += 1;
        }
    }
}

impl Default for PredecodeCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(instrs: &[Instr]) -> CodeStore {
        let mut bytes = Vec::new();
        for i in instrs {
            i.encode(&mut bytes);
        }
        let mut c = CodeStore::new();
        c.append(&bytes);
        c
    }

    #[test]
    fn lookup_matches_byte_decoder() {
        let code = store_with(&[Instr::LoadImm(300), Instr::AddImm(7), Instr::Ret]);
        let mut cache = PredecodeCache::new();
        let mut off = 0usize;
        while off < code.bytes().len() {
            let want = decode(code.bytes(), off).unwrap();
            let got = cache.lookup(&code, off as u32).unwrap();
            assert_eq!(got, want);
            // Second lookup hits.
            assert_eq!(cache.lookup(&code, off as u32).unwrap(), want);
            off += want.1;
        }
        assert_eq!(
            cache.stats().lazy_decodes,
            3,
            "repeat lookups must not re-decode"
        );
    }

    #[test]
    fn eager_walk_makes_lookups_hits() {
        let code = store_with(&[Instr::LoadLocal(0), Instr::LoadImm(9), Instr::Out]);
        let mut cache = PredecodeCache::new();
        cache.translate_range(&code, 0, code.len());
        assert_eq!(cache.translated_ops(), 3);
        cache.lookup(&code, 0).unwrap();
        assert_eq!(
            cache.stats().lazy_decodes,
            0,
            "walked range must serve lookups"
        );
    }

    #[test]
    fn mutation_invalidates_via_version() {
        let mut code = store_with(&[Instr::LoadImm(100)]);
        let mut cache = PredecodeCache::new();
        let (i1, _) = cache.lookup(&code, 0).unwrap();
        assert_eq!(i1, Instr::LoadImm(100));
        // Poke LIB's literal operand byte.
        code.poke(fpc_mem::ByteAddr(1), 42);
        let (i2, _) = cache.lookup(&code, 0).unwrap();
        assert_eq!(
            i2,
            Instr::LoadImm(42),
            "stale decode must not survive a poke"
        );
        assert!(cache.stats().rebuilds >= 2);
    }

    #[test]
    fn decode_errors_pass_through_unmemoised() {
        let mut code = CodeStore::new();
        code.append(&[0xFF]);
        let mut cache = PredecodeCache::new();
        assert!(cache.lookup(&code, 0).is_err());
        assert!(cache.lookup(&code, 0).is_err());
        assert_eq!(cache.translated_ops(), 0);
    }

    #[test]
    fn translate_range_stops_at_data() {
        let mut bytes = Vec::new();
        Instr::Noop.encode(&mut bytes);
        bytes.push(0xFF); // data in the middle of the "range"
        Instr::Halt.encode(&mut bytes);
        let mut code = CodeStore::new();
        code.append(&bytes);
        let mut cache = PredecodeCache::new();
        cache.translate_range(&code, 0, code.len());
        assert_eq!(cache.translated_ops(), 1, "walk stops at the junk byte");
        // The instruction past the junk is still reachable lazily.
        assert_eq!(cache.lookup(&code, 2).unwrap().0, Instr::Halt);
    }
}
