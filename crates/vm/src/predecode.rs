//! The predecoded instruction stream: a host-side translation cache.
//!
//! The Mesa encoding optimises for *space* — one-byte forms for the
//! common cases, multi-byte escapes for the rest — which means the
//! byte-at-a-time decoder runs a guard chain on every simulated
//! instruction. A real machine pays that once per instruction *fetch*;
//! an interpreter that re-parses the same hot loop body billions of
//! times pays it over and over. This module translates each code
//! segment once into a vector of [`DecodedOp`]s and lets
//! [`crate::Machine::step`] dispatch straight off the decoded form.
//!
//! **Invariant: the simulated machine cannot tell.** Decoding reads
//! the raw byte slice and makes no counted memory references, so a
//! predecoded run produces bit-identical cycle and reference counters
//! to a byte-decoded run (`tests/predecode_parity.rs` enforces this
//! over the whole corpus, including mid-run code mutation). The cache
//! is pure memoisation of a pure function of the code bytes.
//!
//! Coherence is by versioning, not by invalidation hooks: the
//! [`CodeStore`] bumps a counter on every mutation (`append`, `poke`),
//! and every lookup compares it. Code swapping (`relocate_module`) and
//! dynamic procedure replacement (`replace_proc`) therefore invalidate
//! the cache automatically — they mutate the store through those same
//! two entry points.

use fpc_isa::{decode, walk, DecodeError, Instr};
use fpc_mem::CodeStore;

/// One predecoded instruction: the decoded form plus its encoded
/// length (needed to advance the PC exactly as the byte decoder
/// would).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedOp {
    /// The decoded instruction.
    pub instr: Instr,
    /// Encoded length in bytes (1–4).
    pub len: u8,
}

/// A fused 2-op superinstruction, stored at the *first* op's offset.
///
/// The second op keeps its own entry in the flat map, so a jump into
/// the middle of a pair needs no special handling — it simply executes
/// the second op as a singleton. The fields beyond the ops themselves
/// are the statically-computed demotion guards: `need` is the minimum
/// evaluation-stack depth at which both halves are guaranteed not to
/// underflow, and `grow` is the maximum transient growth above the
/// starting depth (so `depth + grow > stack_depth` would overflow
/// exactly where the unfused pair would). When a guard fails the
/// machine *demotes* — executes only the first op as a normal step —
/// so every error path goes through the ordinary interpreter and
/// behaves bit-identically to an unfused run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedOp {
    /// The second instruction of the pair.
    pub b: Instr,
    /// Encoded length of the first instruction.
    pub len_a: u8,
    /// Encoded length of the second; 0 is the "no fusion" sentinel.
    pub len_b: u8,
    /// Minimum starting stack depth for both halves to succeed.
    pub need: u8,
    /// Maximum transient stack growth above the starting depth.
    pub grow: u8,
    /// Whether the second op is a transfer (call/return), requiring
    /// per-event reference accounting in the step arm.
    pub xfer: bool,
    /// Whether both halves are pure stack/control ops that can make no
    /// counted reference and no diverted reference — the step arm can
    /// then skip reading the reference counters entirely.
    pub pure: bool,
    /// Whether the *first* half alone is pure: a transfer pair can then
    /// skip the leading counter snapshot (the mid-pair one serves as
    /// both).
    pub pure_a: bool,
}

/// What the fused lookup found at an offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fetched {
    /// A singleton instruction and its encoded length.
    One(Instr, u8),
    /// A fused pair: the first instruction plus the fusion record.
    Pair(Instr, FusedOp),
}

/// The "no fusion" sentinel: no real instruction has length zero.
const NO_FUSE: FusedOp = FusedOp {
    b: Instr::Noop,
    len_a: 0,
    len_b: 0,
    need: 0,
    grow: 0,
    xfer: false,
    pure: false,
    pure_a: false,
};

/// Ops that touch only the evaluation stack, the PC or the host output
/// buffer: no counted memory/table reference, no §7.4 divert, ever.
fn is_pure_stack(i: Instr) -> bool {
    use Instr::*;
    matches!(
        i,
        LoadImm(_)
            | Dup
            | Drop
            | Exch
            | Neg
            | AddImm(_)
            | Add
            | Sub
            | Mul
            | And
            | Or
            | Xor
            | Shl
            | Shr
            | CmpEq
            | CmpNe
            | CmpLt
            | CmpLe
            | CmpGt
            | CmpGe
            | Jump(_)
            | JumpZero(_)
            | JumpNotZero(_)
            | Out
            | Noop
    )
}

/// Evaluation-stack model of an instruction for fusion: `(pops,
/// pushes, is_transfer)`, or `None` if the instruction is not fusible
/// in that position. First position admits only non-control,
/// non-trapping ops (no `Div`/`Mod` — they can trap — and no
/// `LoadLocalAddr`, which can error under the Outlaw policy); second
/// position adds jumps, indirect storage ops and the call/return
/// transfers. Transfers model as `(0, 0)` — they manage the stack
/// through their own (error-checked) discipline, identically fused or
/// not.
fn fuse_model(i: Instr, second: bool) -> Option<(i8, i8, bool)> {
    use Instr::*;
    let m = match i {
        LoadImm(_) | LoadLocal(_) | LoadGlobal(_) | LoadGlobalAddr(_) => (0, 1, false),
        StoreLocal(_) | StoreGlobal(_) => (1, 0, false),
        Dup => (1, 2, false),
        Drop => (1, 0, false),
        Exch => (2, 2, false),
        Neg | AddImm(_) => (1, 1, false),
        Add | Sub | Mul | And | Or | Xor | Shl | Shr => (2, 1, false),
        CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe => (2, 1, false),
        Read if second => (1, 1, false),
        Write if second => (2, 0, false),
        LoadIndex if second => (2, 1, false),
        StoreIndex if second => (3, 0, false),
        Out if second => (1, 0, false),
        Noop if second => (0, 0, false),
        Jump(_) if second => (0, 0, false),
        JumpZero(_) | JumpNotZero(_) if second => (1, 0, false),
        Ret | LocalCall(_) | ExternalCall(_) | DirectCall(_) | ShortDirectCall(_) if second => {
            (0, 0, true)
        }
        _ => return None,
    };
    Some(m)
}

/// Builds the fusion record for an adjacent pair, or `None` if the
/// pair is not fusible. Public so `fpc-verify` can mirror the greedy
/// pairing exactly when it checks jump targets against fused spans.
pub fn fuse_pair(a: Instr, b: Instr, len_a: u8, len_b: u8) -> Option<FusedOp> {
    let (pa, qa, _) = fuse_model(a, false)?;
    let (pb, qb, xfer) = fuse_model(b, true)?;
    let (pa, qa, pb, qb) = (pa as i32, qa as i32, pb as i32, qb as i32);
    // Low-water mark: depth consumed before each half's pushes land.
    let need = pa.max(pa - qa + pb).max(0) as u8;
    // High-water mark relative to the starting depth, at each half's
    // push-completion point (pushes land after pops within an op).
    let g1 = qa - pa;
    let g2 = g1 + qb - pb;
    let grow = g1.max(g2).max(0) as u8;
    Some(FusedOp {
        b,
        len_a,
        len_b,
        need,
        grow,
        xfer,
        pure: is_pure_stack(a) && is_pure_stack(b),
        pure_a: is_pure_stack(a),
    })
}

/// Counters describing how the cache earned its keep.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PredecodeStats {
    /// Lookups served from the decoded stream. The cache itself never
    /// maintains this — bumping a counter per instruction is measurable
    /// on the hot path — so it stays zero here; [`crate::Machine`]
    /// derives it as executed instructions minus `lazy_decodes` (every
    /// step performs exactly one lookup, and a lookup that errors never
    /// becomes an executed instruction).
    pub hits: u64,
    /// Lookups that had to decode (then memoise) on the spot.
    pub lazy_decodes: u64,
    /// Instructions decoded by eager segment walks.
    pub eager_ops: u64,
    /// Times the whole cache was discarded because the code changed.
    pub rebuilds: u64,
}

/// A version-keyed map from code byte offsets to decoded instructions.
///
/// `map[offset]` holds the decoded op directly, with `len == 0` for
/// "not translated" — byte offsets that are data (entry vectors,
/// headers) or simply never executed stay untranslated forever. The
/// flat layout makes the hot lookup one indexed load rather than an
/// index table plus a dependent fetch.
#[derive(Debug, Clone)]
pub struct PredecodeCache {
    version: u64,
    map: Vec<DecodedOp>,
    /// Fusion overlay, same length as `map` when fusion is on:
    /// `fused[offset]` pairs the op at `offset` with its successor
    /// (`len_b == 0` means unfused). Keyed at the first op only — the
    /// second op stays in `map` at its own offset for jump targets.
    fused: Vec<FusedOp>,
    fuse: bool,
    fused_pairs: usize,
    translated: usize,
    stats: PredecodeStats,
}

/// The "untranslated" sentinel: no real instruction has length zero.
const EMPTY: DecodedOp = DecodedOp {
    instr: Instr::Noop,
    len: 0,
};

impl PredecodeCache {
    /// An empty cache; coherent with an empty, never-mutated store.
    pub fn new() -> Self {
        Self::with_fusion(false)
    }

    /// An empty cache that additionally fuses hot 2-op pairs during
    /// eager translation.
    pub fn with_fusion(fuse: bool) -> Self {
        PredecodeCache {
            version: 0,
            map: Vec::new(),
            fused: Vec::new(),
            fuse,
            fused_pairs: 0,
            translated: 0,
            stats: PredecodeStats::default(),
        }
    }

    /// Usage counters.
    pub fn stats(&self) -> PredecodeStats {
        self.stats
    }

    /// Number of distinct instructions currently translated.
    pub fn translated_ops(&self) -> usize {
        self.translated
    }

    /// Number of fused pairs currently in the overlay.
    pub fn fused_pairs(&self) -> usize {
        self.fused_pairs
    }

    /// Discards stale state and re-keys the cache to the store's
    /// current version. No-op when already coherent.
    pub fn sync(&mut self, code: &CodeStore) {
        if self.version == code.version() && self.map.len() == code.bytes().len() {
            return;
        }
        self.version = code.version();
        self.map.clear();
        self.map.resize(code.bytes().len(), EMPTY);
        if self.fuse {
            self.fused.clear();
            self.fused.resize(code.bytes().len(), NO_FUSE);
        }
        self.fused_pairs = 0;
        self.translated = 0;
        self.stats.rebuilds += 1;
    }

    /// Eagerly translates the instruction run in `[start, end)`,
    /// stopping early (silently) at the first undecodable byte — a
    /// range that turns out to hold data is simply left to the lazy
    /// path, which reports the error at the offset actually executed.
    pub fn translate_range(&mut self, code: &CodeStore, start: u32, end: u32) {
        self.sync(code);
        if self.map.get(start as usize).is_some_and(|op| op.len != 0) {
            return; // range already walked
        }
        let mut run: Vec<(usize, Instr, u8)> = Vec::new();
        for triple in walk(code.bytes(), start as usize, end as usize) {
            let Ok((off, instr, len)) = triple else { break };
            self.insert(off, instr, len);
            self.stats.eager_ops += 1;
            if self.fuse {
                run.push((off, instr, len as u8));
            }
        }
        // Greedy left-to-right peephole over the straight-line run:
        // each op joins at most one pair, and lazily-decoded stragglers
        // never fuse (no lookahead guarantees there).
        let mut i = 0;
        while i + 1 < run.len() {
            let (off_a, a, len_a) = run[i];
            let (_, b, len_b) = run[i + 1];
            if let Some(f) = fuse_pair(a, b, len_a, len_b) {
                self.fused[off_a] = f;
                self.fused_pairs += 1;
                i += 2;
            } else {
                i += 1;
            }
        }
    }

    /// The hot path: the decoded instruction at `offset`, exactly as
    /// [`fpc_isa::decode`] would produce it.
    ///
    /// # Errors
    ///
    /// The same [`DecodeError`] the byte decoder reports for this
    /// offset.
    #[inline]
    pub fn lookup(&mut self, code: &CodeStore, offset: u32) -> Result<(Instr, usize), DecodeError> {
        if self.version != code.version() {
            self.sync(code);
        }
        if let Some(&op) = self.map.get(offset as usize) {
            if op.len != 0 {
                return Ok((op.instr, op.len as usize));
            }
        }
        // Lazy path: decode, memoise, return. Reached for code outside
        // any walked segment (e.g. activations finishing on a moved
        // segment's old copy) and for genuine decode errors.
        let (instr, len) = decode(code.bytes(), offset as usize)?;
        self.stats.lazy_decodes += 1;
        self.insert(offset as usize, instr, len);
        Ok((instr, len))
    }

    /// The hot path with the fusion overlay consulted: returns the
    /// fused pair rooted at `offset` when there is one, else the
    /// singleton exactly as [`PredecodeCache::lookup`] would.
    ///
    /// # Errors
    ///
    /// The same [`DecodeError`] the byte decoder reports for this
    /// offset.
    #[inline]
    pub fn lookup_fused(&mut self, code: &CodeStore, offset: u32) -> Result<Fetched, DecodeError> {
        if self.version != code.version() {
            self.sync(code);
        }
        let i = offset as usize;
        if let Some(&op) = self.map.get(i) {
            if op.len != 0 {
                if self.fuse {
                    let f = self.fused[i];
                    if f.len_b != 0 {
                        return Ok(Fetched::Pair(op.instr, f));
                    }
                }
                return Ok(Fetched::One(op.instr, op.len));
            }
        }
        let (instr, len) = decode(code.bytes(), i)?;
        self.stats.lazy_decodes += 1;
        self.insert(i, instr, len);
        Ok(Fetched::One(instr, len as u8))
    }

    fn insert(&mut self, offset: usize, instr: Instr, len: usize) {
        if offset < self.map.len() {
            self.map[offset] = DecodedOp {
                instr,
                len: len as u8,
            };
            self.translated += 1;
        }
    }
}

impl Default for PredecodeCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(instrs: &[Instr]) -> CodeStore {
        let mut bytes = Vec::new();
        for i in instrs {
            i.encode(&mut bytes);
        }
        let mut c = CodeStore::new();
        c.append(&bytes);
        c
    }

    #[test]
    fn lookup_matches_byte_decoder() {
        let code = store_with(&[Instr::LoadImm(300), Instr::AddImm(7), Instr::Ret]);
        let mut cache = PredecodeCache::new();
        let mut off = 0usize;
        while off < code.bytes().len() {
            let want = decode(code.bytes(), off).unwrap();
            let got = cache.lookup(&code, off as u32).unwrap();
            assert_eq!(got, want);
            // Second lookup hits.
            assert_eq!(cache.lookup(&code, off as u32).unwrap(), want);
            off += want.1;
        }
        assert_eq!(
            cache.stats().lazy_decodes,
            3,
            "repeat lookups must not re-decode"
        );
    }

    #[test]
    fn eager_walk_makes_lookups_hits() {
        let code = store_with(&[Instr::LoadLocal(0), Instr::LoadImm(9), Instr::Out]);
        let mut cache = PredecodeCache::new();
        cache.translate_range(&code, 0, code.len());
        assert_eq!(cache.translated_ops(), 3);
        cache.lookup(&code, 0).unwrap();
        assert_eq!(
            cache.stats().lazy_decodes,
            0,
            "walked range must serve lookups"
        );
    }

    #[test]
    fn mutation_invalidates_via_version() {
        let mut code = store_with(&[Instr::LoadImm(100)]);
        let mut cache = PredecodeCache::new();
        let (i1, _) = cache.lookup(&code, 0).unwrap();
        assert_eq!(i1, Instr::LoadImm(100));
        // Poke LIB's literal operand byte.
        code.poke(fpc_mem::ByteAddr(1), 42);
        let (i2, _) = cache.lookup(&code, 0).unwrap();
        assert_eq!(
            i2,
            Instr::LoadImm(42),
            "stale decode must not survive a poke"
        );
        assert!(cache.stats().rebuilds >= 2);
    }

    #[test]
    fn decode_errors_pass_through_unmemoised() {
        let mut code = CodeStore::new();
        code.append(&[0xFF]);
        let mut cache = PredecodeCache::new();
        assert!(cache.lookup(&code, 0).is_err());
        assert!(cache.lookup(&code, 0).is_err());
        assert_eq!(cache.translated_ops(), 0);
    }

    #[test]
    fn fusion_pairs_adjacent_ops_and_keeps_singletons() {
        // LL0 · LI2 · CmpLt · JZ — greedy pairs (LL0,LI2) and (CmpLt,JZ).
        let code = store_with(&[
            Instr::LoadLocal(0),
            Instr::LoadImm(2),
            Instr::CmpLt,
            Instr::JumpZero(7),
        ]);
        let mut cache = PredecodeCache::with_fusion(true);
        cache.translate_range(&code, 0, code.len());
        assert_eq!(cache.fused_pairs(), 2);
        let Fetched::Pair(a, f) = cache.lookup_fused(&code, 0).unwrap() else {
            panic!("first op should root a pair")
        };
        assert_eq!(a, Instr::LoadLocal(0));
        assert_eq!(f.b, Instr::LoadImm(2));
        assert!(!f.xfer);
        // A jump into the middle of the pair sees the second op alone.
        let off_b = f.len_a as u32;
        assert!(matches!(
            cache.lookup_fused(&code, off_b).unwrap(),
            Fetched::One(Instr::LoadImm(2), _)
        ));
    }

    #[test]
    fn fusion_respects_position_rules() {
        // Ret fuses only as the second op; Div never fuses.
        assert!(fuse_pair(Instr::LoadLocal(0), Instr::Ret, 1, 1).is_some_and(|f| f.xfer));
        assert!(fuse_pair(Instr::Ret, Instr::LoadLocal(0), 1, 1).is_none());
        assert!(fuse_pair(Instr::Div, Instr::LoadImm(1), 1, 2).is_none());
        assert!(fuse_pair(Instr::LoadImm(1), Instr::Div, 2, 1).is_none());
        assert!(fuse_pair(Instr::LoadLocalAddr(0), Instr::Out, 1, 1).is_none());
    }

    #[test]
    fn fusion_guards_encode_stack_extremes() {
        // (LoadImm, Add): transiently one deeper, needs one beneath.
        let f = fuse_pair(Instr::LoadImm(5), Instr::Add, 2, 1).unwrap();
        assert_eq!((f.need, f.grow), (1, 1));
        // (CmpLt, JumpZero): consumes two, never grows.
        let f = fuse_pair(Instr::CmpLt, Instr::JumpZero(3), 1, 2).unwrap();
        assert_eq!((f.need, f.grow), (2, 0));
        // (Drop, Drop): needs two on the stack.
        let f = fuse_pair(Instr::Drop, Instr::Drop, 1, 1).unwrap();
        assert_eq!((f.need, f.grow), (2, 0));
    }

    #[test]
    fn fusion_off_cache_never_pairs() {
        let code = store_with(&[Instr::LoadLocal(0), Instr::LoadImm(2)]);
        let mut cache = PredecodeCache::new();
        cache.translate_range(&code, 0, code.len());
        assert_eq!(cache.fused_pairs(), 0);
        assert!(matches!(
            cache.lookup_fused(&code, 0).unwrap(),
            Fetched::One(Instr::LoadLocal(0), 1)
        ));
    }

    #[test]
    fn translate_range_stops_at_data() {
        let mut bytes = Vec::new();
        Instr::Noop.encode(&mut bytes);
        bytes.push(0xFF); // data in the middle of the "range"
        Instr::Halt.encode(&mut bytes);
        let mut code = CodeStore::new();
        code.append(&bytes);
        let mut cache = PredecodeCache::new();
        cache.translate_range(&code, 0, code.len());
        assert_eq!(cache.translated_ops(), 1, "walk stops at the junk byte");
        // The instruction past the junk is still reachable lazily.
        assert_eq!(cache.lookup(&code, 2).unwrap().0, Instr::Halt);
    }
}
