//! Human-readable listings of linked images.

use std::fmt::Write as _;

use fpc_core::layout;
use fpc_isa::{disassemble, DecodeError};

use crate::image::{Image, ProcRef};

/// Renders a full annotated listing of an image: per module, each
/// procedure's header fields and disassembled body.
///
/// # Errors
///
/// [`DecodeError`] if the image contains undecodable bytes where code
/// is expected (a linker bug, not a user error).
///
/// # Example
///
/// ```
/// use fpc_isa::Instr;
/// use fpc_vm::{listing, ImageBuilder, ProcRef, ProcSpec};
///
/// let mut b = ImageBuilder::new();
/// let m = b.module("demo");
/// b.proc_with(m, ProcSpec::new("main", 0, 0), |a| {
///     a.instr(Instr::LoadImm(1));
///     a.instr(Instr::Out);
///     a.instr(Instr::Halt);
/// });
/// let image = b.build(ProcRef { module: 0, ev_index: 0 }).unwrap();
/// let text = listing(&image).unwrap();
/// assert!(text.contains("demo#0"));
/// assert!(text.contains("HALT"));
/// ```
pub fn listing(image: &Image) -> Result<String, DecodeError> {
    let mut out = String::new();
    // Segment boundaries, for body-end detection.
    let mut boundaries: Vec<u32> = image.modules.iter().map(|m| m.code_base.0).collect();
    boundaries.push(image.code.len() as u32);
    for (mi, module) in image.modules.iter().enumerate() {
        let seg_end = boundaries
            .iter()
            .copied()
            .filter(|&b| b > module.code_base.0)
            .min()
            .unwrap_or(image.code.len() as u32);
        let _ = writeln!(
            out,
            "module {} at {} ({} entry points, {} LV entries)",
            module.name,
            module.code_base,
            module.nprocs,
            module.lv.len()
        );
        // Header offsets in layout order.
        let mut headers: Vec<(u16, u32)> = (0..module.nprocs)
            .map(|p| {
                (
                    p,
                    image
                        .proc_header_addr(ProcRef {
                            module: mi,
                            ev_index: p,
                        })
                        .0,
                )
            })
            .collect();
        headers.sort_by_key(|&(_, off)| off);
        for (i, &(p, hdr)) in headers.iter().enumerate() {
            let at = hdr as usize;
            let fsi = image.code[at + layout::HDR_FSI as usize];
            let (nargs, addr_taken) =
                layout::unpack_flags(image.code[at + layout::HDR_FLAGS as usize]);
            let frame_words = image.classes.size_of(fsi);
            let _ = writeln!(
                out,
                "  {}#{p} at {hdr:#06x}: fsi={fsi} ({frame_words} words), {nargs} args{}",
                module.name,
                if addr_taken {
                    ", takes local addresses"
                } else {
                    ""
                },
            );
            let start = at + layout::PROC_HEADER_BYTES as usize;
            let end = headers
                .get(i + 1)
                .map(|&(_, h)| h as usize)
                .unwrap_or(seg_end as usize);
            for (off, instr) in disassemble(&image.code, start, end)? {
                let _ = writeln!(out, "    {off:04x}  {instr}");
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{ImageBuilder, ProcSpec};
    use fpc_isa::Instr;

    #[test]
    fn lists_multi_module_images() {
        let mut b = ImageBuilder::new();
        let lib = b.module("lib");
        b.proc_with(lib, ProcSpec::new("f", 1, 1), |a| {
            a.instr(Instr::StoreLocal(0));
            a.instr(Instr::LoadLocal(0));
            a.instr(Instr::Ret);
        });
        let main = b.module("main");
        let lv = b.import(
            main,
            ProcRef {
                module: 0,
                ev_index: 0,
            },
        );
        b.proc_with(
            main,
            ProcSpec::new("main", 0, 0).with_addr_taken(),
            move |a| {
                a.instr(Instr::LoadImm(5));
                a.instr(Instr::ExternalCall(lv));
                a.instr(Instr::Out);
                a.instr(Instr::Halt);
            },
        );
        let image = b
            .build(ProcRef {
                module: 1,
                ev_index: 0,
            })
            .unwrap();
        let text = listing(&image).unwrap();
        assert!(text.contains("module lib"), "{text}");
        assert!(text.contains("module main"), "{text}");
        assert!(text.contains("lib#0"), "{text}");
        assert!(text.contains("1 args"), "{text}");
        assert!(text.contains("takes local addresses"), "{text}");
        assert!(text.contains("EFC 0"), "{text}");
        assert!(text.contains("1 LV entries"), "{text}");
    }

    #[test]
    fn listing_covers_every_instruction() {
        let mut b = ImageBuilder::new();
        let m = b.module("m");
        b.proc_with(m, ProcSpec::new("main", 0, 0), |a| {
            a.instr(Instr::LoadImm(300)); // 3-byte literal
            a.instr(Instr::Out);
            a.instr(Instr::Halt);
        });
        let image = b
            .build(ProcRef {
                module: 0,
                ev_index: 0,
            })
            .unwrap();
        let text = listing(&image).unwrap();
        assert!(text.contains("LI 300"));
        assert!(text.contains("OUT"));
        assert!(text.contains("HALT"));
    }
}
