//! The cycle cost model and per-transfer statistics.
//!
//! Every comparison in the paper reduces to counting memory references
//! and asking whether a call can proceed "as fast as an unconditional
//! jump". The model here makes that checkable:
//!
//! * every instruction costs [`CYCLE_BASE`] to decode/execute;
//! * every architectural **data** reference costs [`CYCLE_MEMREF`]
//!   (sequential instruction fetch is covered by the IFU and free, as
//!   the paper assumes a machine "likely to have some kind of
//!   instruction fetch unit");
//! * every **taken** control transfer — jump, call or return — costs
//!   [`CYCLE_REFILL`] for the fetch-unit redirect.
//!
//! An unconditional jump therefore costs exactly
//! [`jump_cycles`]`()` = 2, and a call or return is "as fast as a
//! jump" exactly when it also completes in 2 cycles: no table
//! indirection, no frame-word traffic, frame allocation hidden by the
//! free-frame cache, arguments renamed rather than stored.

use std::fmt;

use fpc_stats::Histogram;

/// Cycles to decode and execute any instruction.
pub const CYCLE_BASE: u64 = 1;
/// Cycles per architectural data-memory reference.
pub const CYCLE_MEMREF: u64 = 1;
/// Cycles to redirect the instruction-fetch unit on a taken transfer.
pub const CYCLE_REFILL: u64 = 1;

/// Cycles of an unconditional jump under this model — the yardstick
/// for the paper's headline claim.
pub const fn jump_cycles() -> u64 {
    CYCLE_BASE + CYCLE_REFILL
}

/// The kinds of transfer event the machine classifies (E10, E12, E5,
/// E6 all aggregate over these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferKind {
    /// A procedure call (any linkage).
    Call,
    /// A procedure return.
    Return,
    /// A general `XFER` (coroutine transfer).
    Coroutine,
    /// A process switch.
    ProcessSwitch,
    /// A trap transfer.
    Trap,
    /// A completed remote procedure call (cross-machine `XFER`): the
    /// marshalled round trip, charged once per successful call.
    Remote,
}

impl fmt::Display for TransferKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferKind::Call => write!(f, "call"),
            TransferKind::Return => write!(f, "return"),
            TransferKind::Coroutine => write!(f, "coroutine"),
            TransferKind::ProcessSwitch => write!(f, "process-switch"),
            TransferKind::Trap => write!(f, "trap"),
            TransferKind::Remote => write!(f, "remote"),
        }
    }
}

/// Aggregated statistics for one [`TransferKind`].
#[derive(Debug, Default, Clone)]
pub struct KindStats {
    /// Number of events.
    pub count: u64,
    /// Events that completed at jump speed.
    pub fast: u64,
    /// Total cycles spent in these events.
    pub cycles: u64,
    /// Total data references made by these events.
    pub refs: u64,
    /// Distribution of cycles per event.
    pub cycle_hist: Histogram,
}

impl KindStats {
    /// Fraction of events at jump speed.
    pub fn fast_fraction(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.fast as f64 / self.count as f64
        }
    }

    /// Mean cycles per event.
    pub fn mean_cycles(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.cycles as f64 / self.count as f64
        }
    }

    /// Mean data references per event.
    pub fn mean_refs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.refs as f64 / self.count as f64
        }
    }
}

/// Per-transfer statistics for a run.
#[derive(Debug, Default, Clone)]
pub struct TransferStats {
    /// Calls.
    pub calls: KindStats,
    /// Returns.
    pub returns: KindStats,
    /// Coroutine transfers.
    pub coroutines: KindStats,
    /// Process switches.
    pub switches: KindStats,
    /// Traps.
    pub traps: KindStats,
    /// Completed remote calls.
    pub remotes: KindStats,
}

impl TransferStats {
    /// Records one event.
    pub fn record(&mut self, kind: TransferKind, cycles: u64, refs: u64) {
        let k = self.kind_mut(kind);
        k.count += 1;
        k.cycles += cycles;
        k.refs += refs;
        k.cycle_hist.record(cycles);
        if cycles <= jump_cycles() {
            k.fast += 1;
        }
    }

    fn kind_mut(&mut self, kind: TransferKind) -> &mut KindStats {
        match kind {
            TransferKind::Call => &mut self.calls,
            TransferKind::Return => &mut self.returns,
            TransferKind::Coroutine => &mut self.coroutines,
            TransferKind::ProcessSwitch => &mut self.switches,
            TransferKind::Trap => &mut self.traps,
            TransferKind::Remote => &mut self.remotes,
        }
    }

    /// Statistics for one kind.
    pub fn kind(&self, kind: TransferKind) -> &KindStats {
        match kind {
            TransferKind::Call => &self.calls,
            TransferKind::Return => &self.returns,
            TransferKind::Coroutine => &self.coroutines,
            TransferKind::ProcessSwitch => &self.switches,
            TransferKind::Trap => &self.traps,
            TransferKind::Remote => &self.remotes,
        }
    }

    /// Calls plus returns — the denominator of the paper's "one call
    /// or return for every 10 instructions" and of the 95% headline.
    pub fn calls_and_returns(&self) -> u64 {
        self.calls.count + self.returns.count
    }

    /// The headline metric: fraction of calls and returns that ran at
    /// jump speed.
    pub fn fast_call_return_fraction(&self) -> f64 {
        let total = self.calls_and_returns();
        if total == 0 {
            0.0
        } else {
            (self.calls.fast + self.returns.fast) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_is_two_cycles() {
        assert_eq!(jump_cycles(), 2);
    }

    #[test]
    fn record_classifies_fast_events() {
        let mut t = TransferStats::default();
        t.record(TransferKind::Call, jump_cycles(), 0);
        t.record(TransferKind::Call, 12, 10);
        t.record(TransferKind::Return, 2, 0);
        assert_eq!(t.calls.count, 2);
        assert_eq!(t.calls.fast, 1);
        assert_eq!(t.returns.fast, 1);
        assert_eq!(t.calls_and_returns(), 3);
        assert!((t.fast_call_return_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn means_computed() {
        let mut t = TransferStats::default();
        t.record(TransferKind::Coroutine, 10, 8);
        t.record(TransferKind::Coroutine, 20, 16);
        let k = t.kind(TransferKind::Coroutine);
        assert_eq!(k.mean_cycles(), 15.0);
        assert_eq!(k.mean_refs(), 12.0);
        assert_eq!(k.fast_fraction(), 0.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let t = TransferStats::default();
        assert_eq!(t.fast_call_return_fraction(), 0.0);
        assert_eq!(t.kind(TransferKind::Trap).mean_cycles(), 0.0);
    }
}
