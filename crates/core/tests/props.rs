//! Property tests for the packed representations of §5.1.

use proptest::prelude::*;

use fpc_core::{Context, ContextWord, EvIndex, FrameHandle, GftEntry, GftIndex, ProcDesc};
use fpc_mem::WordAddr;

proptest! {
    /// Every 16-bit word decodes to a context that re-encodes to the
    /// same word: the packing is a bijection over its domain.
    #[test]
    fn context_word_bijection(raw in any::<u16>()) {
        let w = ContextWord::from_raw(raw);
        let ctx = Context::from(w);
        prop_assert_eq!(ContextWord::from(ctx).raw(), raw);
    }

    /// Packed procedure descriptors round-trip their fields.
    #[test]
    fn proc_desc_round_trip(env in 0u16..1024, code in 0u8..32) {
        let p = ProcDesc::new(GftIndex::new(env).unwrap(), EvIndex::new(code).unwrap());
        let w = ContextWord::from(Context::Proc(p));
        prop_assert!(w.is_proc());
        match Context::from(w) {
            Context::Proc(q) => {
                prop_assert_eq!(q.env().get(), env);
                prop_assert_eq!(q.code().get(), code);
            }
            other => prop_assert!(false, "decoded {other}"),
        }
    }

    /// Frame handles round-trip every aligned, in-range address, and
    /// frame words never collide with procedure words.
    #[test]
    fn frame_handles_round_trip(addr in 1u32..(1 << 15)) {
        let addr = WordAddr(addr * 2);
        let h = FrameHandle::from_addr(addr).unwrap();
        prop_assert_eq!(h.addr(), addr);
        let w = ContextWord::from(Context::Frame(h));
        prop_assert!(w.is_frame());
        prop_assert!(!w.is_proc());
        prop_assert!(!w.is_nil());
    }

    /// GFT entries round-trip address and bias for every quad-aligned
    /// address in the 64K segment.
    #[test]
    fn gft_entries_round_trip(quad in 0u32..(1 << 14), bias in 0u8..4) {
        let gf = WordAddr(quad * 4);
        let e = GftEntry::new(gf, bias).unwrap();
        let back = GftEntry::from_raw(e.raw());
        prop_assert_eq!(back.global_frame(), gf);
        prop_assert_eq!(back.bias(), bias);
        prop_assert_eq!(back.effective_ev_index(31), bias as u16 * 32 + 31);
    }
}
