//! Exhaustive tests for the packed representations of §5.1.
//!
//! These were property-based samples under proptest; the domains are
//! small enough (≤ 2¹⁶ points each) that the container's offline build
//! can simply sweep them completely, which is strictly stronger.

use fpc_core::{Context, ContextWord, EvIndex, FrameHandle, GftEntry, GftIndex, ProcDesc};
use fpc_mem::WordAddr;

/// Every 16-bit word decodes to a context that re-encodes to the same
/// word: the packing is a bijection over its whole domain.
#[test]
fn context_word_bijection() {
    for raw in 0..=u16::MAX {
        let w = ContextWord::from_raw(raw);
        let ctx = Context::from(w);
        assert_eq!(ContextWord::from(ctx).raw(), raw, "raw {raw:#06x}");
    }
}

/// Packed procedure descriptors round-trip their fields over the full
/// GFT-index × EV-index domain.
#[test]
fn proc_desc_round_trip() {
    for env in 0u16..1024 {
        for code in 0u8..32 {
            let p = ProcDesc::new(GftIndex::new(env).unwrap(), EvIndex::new(code).unwrap());
            let w = ContextWord::from(Context::Proc(p));
            assert!(w.is_proc());
            match Context::from(w) {
                Context::Proc(q) => {
                    assert_eq!(q.env().get(), env);
                    assert_eq!(q.code().get(), code);
                }
                other => panic!("decoded {other}"),
            }
        }
    }
}

/// Frame handles round-trip every aligned, in-range address, and frame
/// words never collide with procedure words.
#[test]
fn frame_handles_round_trip() {
    for half in 1u32..(1 << 15) {
        let addr = WordAddr(half * 2);
        let h = FrameHandle::from_addr(addr).unwrap();
        assert_eq!(h.addr(), addr);
        let w = ContextWord::from(Context::Frame(h));
        assert!(w.is_frame());
        assert!(!w.is_proc());
        assert!(!w.is_nil());
    }
}

/// GFT entries round-trip address and bias for every quad-aligned
/// address in the 64K segment.
#[test]
fn gft_entries_round_trip() {
    for quad in 0u32..(1 << 14) {
        for bias in 0u8..4 {
            let gf = WordAddr(quad * 4);
            let e = GftEntry::new(gf, bias).unwrap();
            let back = GftEntry::from_raw(e.raw());
            assert_eq!(back.global_frame(), gf);
            assert_eq!(back.bias(), bias);
            assert_eq!(back.effective_ev_index(31), bias as u16 * 32 + 31);
        }
    }
}
