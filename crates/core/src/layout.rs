//! Frame, global-frame and procedure-header layouts (paper §4–§6).
//!
//! These constants are the contract between the compiler
//! (`fpc-compiler`), the linker, and the interpreters (`fpc-vm`). They
//! live in `fpc-core` so neither side can drift.
//!
//! # Local frame
//!
//! A local frame provides "all the information needed to continue
//! execution" (feature F1). Word offsets within the frame:
//!
//! ```text
//! -1 : frame-size index (allocator's extra word, owned by fpc-frames)
//!  0 : saved PC — byte offset of the next instruction, relative to the
//!      module's code base; valid only while control is outside
//!  1 : return link — a packed context word
//!  2 : global-frame pointer — word address of the module instance
//!  3… : locals; argument j is local j, matching the register-bank
//!      renaming of §7.2 where arguments "automatically appear as the
//!      first few local variables"
//! ```
//!
//! # Global frame and link vector
//!
//! ```text
//!  gf−1−k : link-vector entry k (a packed context word)
//!  gf+0   : code base — code-store *word* address (byte address / 2)
//!  gf+1…  : the module's global variables
//! ```
//!
//! The link vector sits at negative offsets from the global frame so
//! an EXTERNALCALL can reach its entry with **one** memory reference
//! from the GF register — giving exactly the four levels of
//! indirection in the paper's figure 1 (LV, GFT, global frame, EV).
//!
//! # Procedure header
//!
//! The entry vector points at a 6-byte header; code begins right after.
//! "This first byte gives the size of the procedure's frame" (§5.1) and
//! for `DIRECTCALL` "at p is stored the global frame address GF and the
//! frame size fsi, immediately followed by the first instruction" (§6).
//! We also store the code base in the header: the paper's
//! `SETGLOBALFRAME GF` pseudo-instruction must recover the code base
//! somehow, and reading it from the global frame would cost the fast
//! path a memory reference; header bytes are prefetched by the IFU
//! "like an unconditional jump", so they are free. (See DESIGN.md.)
//!
//! ```text
//! byte 0   : frame-size index (fsi)
//! byte 1   : flags + argument count (bit 7: address-taken locals;
//!            bits 0..=5: number of arguments)
//! bytes 2–3: global frame word address (little endian)
//! bytes 4–5: code base word (little endian)
//! ```

use fpc_mem::{ByteAddr, WordAddr};

/// Frame word 0: saved PC (byte offset from code base).
pub const FRAME_PC: u32 = 0;
/// Frame word 1: return link (packed context word).
pub const FRAME_RETURN_LINK: u32 = 1;
/// Frame word 2: global-frame pointer.
pub const FRAME_GLOBAL: u32 = 2;
/// Number of frame header words before the locals.
pub const FRAME_HEADER_WORDS: u32 = 3;

/// Global-frame word 0: code base (code word address).
pub const GF_CODE_BASE: u32 = 0;
/// First global variable's offset within the global frame.
pub const GF_GLOBALS: u32 = 1;

/// Procedure header size in bytes.
pub const PROC_HEADER_BYTES: u32 = 6;
/// Header byte 0: frame-size index.
pub const HDR_FSI: u32 = 0;
/// Header byte 1: flags + argument count.
pub const HDR_FLAGS: u32 = 1;
/// Header bytes 2–3: global frame word address.
pub const HDR_GF: u32 = 2;
/// Header bytes 4–5: code base word.
pub const HDR_CODE_BASE: u32 = 4;

/// Maximum argument count representable in the header flags byte.
pub const MAX_ARGS: u8 = 0x3F;

/// Flag bit: the procedure takes the address of a local (`§7.4`), so
/// its frame must be flushed from any shadowing register bank whenever
/// control leaves it under the flush policy.
pub const FLAG_ADDR_TAKEN: u8 = 0x80;

/// Word address of local slot `i` in the frame at `frame`.
///
/// Argument `j` is local slot `j`.
#[inline]
pub fn local_slot(frame: WordAddr, i: u32) -> WordAddr {
    frame.offset(FRAME_HEADER_WORDS + i)
}

/// Word address of link-vector entry `k` for the module instance whose
/// global frame is at `gf`.
#[inline]
pub fn lv_slot(gf: WordAddr, k: u32) -> WordAddr {
    WordAddr(gf.0 - 1 - k)
}

/// Packs the header flags byte.
///
/// # Panics
///
/// Panics if `nargs` exceeds [`MAX_ARGS`].
pub fn pack_flags(nargs: u8, addr_taken: bool) -> u8 {
    assert!(nargs <= MAX_ARGS, "too many arguments: {nargs}");
    nargs | if addr_taken { FLAG_ADDR_TAKEN } else { 0 }
}

/// Unpacks the header flags byte into `(nargs, addr_taken)`.
pub fn unpack_flags(flags: u8) -> (u8, bool) {
    (flags & MAX_ARGS, flags & FLAG_ADDR_TAKEN != 0)
}

/// Converts a code-base *word* (as stored in a global frame) to the
/// byte address of the segment's first byte.
#[inline]
pub fn code_base_bytes(code_base_word: u16) -> ByteAddr {
    ByteAddr(code_base_word as u32 * 2)
}

/// Converts a segment base byte address to the word form stored in a
/// global frame.
///
/// # Panics
///
/// Panics if the base is odd or beyond the 128 KB reach of a 16-bit
/// code-base word.
#[inline]
pub fn code_base_word(base: ByteAddr) -> u16 {
    assert!(base.0.is_multiple_of(2), "code segments are word aligned");
    assert!(base.0 / 2 <= u16::MAX as u32, "code base beyond 128 KB");
    (base.0 / 2) as u16
}

/// Byte address of entry-vector slot `i` for a segment based at `base`.
/// "EV starts at the code base" (§5.1); each entry is two bytes.
#[inline]
pub fn ev_slot(base: ByteAddr, i: u16) -> ByteAddr {
    base.offset(2 * i as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_slots_follow_header() {
        let f = WordAddr(100);
        assert_eq!(local_slot(f, 0), WordAddr(103));
        assert_eq!(local_slot(f, 5), WordAddr(108));
    }

    #[test]
    fn lv_slots_grow_downward_from_gf() {
        let gf = WordAddr(0x500);
        assert_eq!(lv_slot(gf, 0), WordAddr(0x4FF));
        assert_eq!(lv_slot(gf, 3), WordAddr(0x4FC));
    }

    #[test]
    fn flags_round_trip() {
        for nargs in [0u8, 1, 17, MAX_ARGS] {
            for taken in [false, true] {
                let f = pack_flags(nargs, taken);
                assert_eq!(unpack_flags(f), (nargs, taken));
            }
        }
    }

    #[test]
    #[should_panic(expected = "too many arguments")]
    fn flags_reject_oversized_nargs() {
        let _ = pack_flags(64, false);
    }

    #[test]
    fn code_base_conversions() {
        let b = ByteAddr(0x400);
        let w = code_base_word(b);
        assert_eq!(code_base_bytes(w), b);
    }

    #[test]
    #[should_panic(expected = "word aligned")]
    fn odd_code_base_rejected() {
        let _ = code_base_word(ByteAddr(3));
    }

    #[test]
    fn ev_slots_are_two_bytes_apart() {
        let base = ByteAddr(0x100);
        assert_eq!(ev_slot(base, 0), ByteAddr(0x100));
        assert_eq!(ev_slot(base, 3), ByteAddr(0x106));
    }

    #[test]
    fn header_field_offsets_are_consistent() {
        const {
            assert!(HDR_FSI < PROC_HEADER_BYTES);
            assert!(HDR_FLAGS < PROC_HEADER_BYTES);
            assert!(HDR_GF + 1 < PROC_HEADER_BYTES);
            assert!(HDR_CODE_BASE + 1 < PROC_HEADER_BYTES);
        }
    }
}
