//! The table-indirection space model (paper §5, point T1).
//!
//! "If the full address takes *f* bits, the table index takes *i* bits,
//! and the address is used *n* times, then the space changes from *nf*
//! to *ni + f*. … For example, if n = 3, i = 10 (1024 table entries) and
//! f = 32, then 96 − 62 = 34 bits are saved, or about one-third."
//!
//! Experiment E2 sweeps this model; the Mesa encoding instantiates it
//! four times (LV, GFT, global frame, EV).

/// Parameters of one table-indirection decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableSpaceModel {
    /// Bits in a table index (`i`). Determines the maximum object count.
    pub index_bits: u32,
    /// Bits in a full address (`f`).
    pub addr_bits: u32,
}

impl TableSpaceModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if the index is not strictly smaller than the address —
    /// indirection can only pay when the index is the shorter encoding.
    pub fn new(index_bits: u32, addr_bits: u32) -> Self {
        assert!(
            index_bits < addr_bits,
            "table index ({index_bits} bits) must be shorter than the address ({addr_bits} bits)"
        );
        TableSpaceModel {
            index_bits,
            addr_bits,
        }
    }

    /// Bits used with the address stored directly at each of `n` uses.
    pub fn direct_bits(&self, n: u64) -> u64 {
        n * self.addr_bits as u64
    }

    /// Bits used with a table: `n` indices plus one table entry.
    pub fn table_bits(&self, n: u64) -> u64 {
        n * self.index_bits as u64 + self.addr_bits as u64
    }

    /// Bits saved by the table scheme (negative = table costs more).
    pub fn saving_bits(&self, n: u64) -> i64 {
        self.direct_bits(n) as i64 - self.table_bits(n) as i64
    }

    /// Fractional saving relative to the direct scheme, in `[−∞, 1)`.
    /// Zero uses yields `0.0`.
    pub fn saving_fraction(&self, n: u64) -> f64 {
        let direct = self.direct_bits(n);
        if direct == 0 {
            0.0
        } else {
            self.saving_bits(n) as f64 / direct as f64
        }
    }

    /// Smallest number of uses at which the table scheme is strictly
    /// smaller: `n·f > n·i + f  ⇔  n > f / (f − i)`.
    pub fn break_even_uses(&self) -> u64 {
        let f = self.addr_bits as u64;
        let i = self.index_bits as u64;
        f / (f - i) + 1
    }

    /// Maximum number of distinct objects this index width can name.
    pub fn capacity(&self) -> u64 {
        1u64 << self.index_bits
    }
}

/// The paper's worked example: n = 3, i = 10, f = 32 saves 34 bits,
/// about one third.
///
/// ```
/// let m = fpc_core::tables::paper_example();
/// assert_eq!(m.saving_bits(3), 34);
/// let frac = m.saving_fraction(3);
/// assert!(frac > 0.33 && frac < 0.37);
/// ```
pub fn paper_example() -> TableSpaceModel {
    TableSpaceModel::new(10, 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example_reproduced() {
        let m = paper_example();
        assert_eq!(m.direct_bits(3), 96);
        assert_eq!(m.table_bits(3), 62);
        assert_eq!(m.saving_bits(3), 34);
        assert!((m.saving_fraction(3) - 34.0 / 96.0).abs() < 1e-12);
    }

    #[test]
    fn break_even_matches_inequality() {
        let m = TableSpaceModel::new(10, 32);
        let n = m.break_even_uses();
        assert!(m.saving_bits(n) > 0);
        assert!(m.saving_bits(n - 1) <= 0);
    }

    #[test]
    fn single_use_never_pays() {
        // One use: table adds a whole entry for nothing.
        let m = TableSpaceModel::new(8, 16);
        assert!(m.saving_bits(1) < 0);
    }

    #[test]
    fn zero_uses_is_zero_saving() {
        let m = TableSpaceModel::new(8, 16);
        assert_eq!(m.saving_fraction(0), 0.0);
    }

    #[test]
    fn capacity_is_two_to_the_index() {
        assert_eq!(TableSpaceModel::new(10, 32).capacity(), 1024);
        assert_eq!(TableSpaceModel::new(5, 16).capacity(), 32);
    }

    #[test]
    #[should_panic(expected = "shorter")]
    fn index_must_be_shorter_than_address() {
        let _ = TableSpaceModel::new(16, 16);
    }

    #[test]
    fn saving_approaches_index_ratio_asymptotically() {
        let m = TableSpaceModel::new(10, 32);
        let f = m.saving_fraction(1_000_000);
        // Asymptote: 1 - i/f = 1 - 10/32.
        assert!((f - (1.0 - 10.0 / 32.0)).abs() < 1e-3);
    }
}
