//! Generation keys for the transfer tables.
//!
//! The paper's binding spectrum (§2, D1–D3) trades lookup cost against
//! freedom to rebind: a resolved transfer target is a *pure function*
//! of two slowly-changing stores — the code segment (entry vectors,
//! procedure headers) and the transfer-table words in data memory (the
//! GFT and each global frame's code-base word). Anything that memoises
//! a resolution — an inline cache at a call site, say — is therefore
//! coherent exactly as long as neither store has changed.
//!
//! This module gives that condition a name. A [`TableKey`] snapshots
//! the two mutation counters (the `CodeStore` version and the data
//! memory's watched-word generation); [`TableKey::matches`] is the
//! one-comparison coherence check a cache performs before trusting a
//! memoised binding. `relocate_module` and `replace_proc` mutate the
//! code store (bumping its version), and simulated stores to GFT or
//! global-frame words bump the watched generation, so every rebinding
//! path in the system invalidates through one of the two counters —
//! the late-binding freedoms of D1 survive the early-binding speed of
//! D3 because staleness is *detected*, not outlawed.

/// A snapshot of the two counters every resolved transfer target
/// depends on: the code store's mutation version and the data memory's
/// transfer-table (watched-word) generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableKey {
    /// `CodeStore::version()` at snapshot time.
    pub code_version: u64,
    /// `Memory::table_gen()` at snapshot time.
    pub table_gen: u64,
}

impl TableKey {
    /// Snapshots the two counters.
    pub fn new(code_version: u64, table_gen: u64) -> Self {
        TableKey {
            code_version,
            table_gen,
        }
    }

    /// Whether a binding memoised under this key is still coherent.
    #[inline]
    pub fn matches(self, code_version: u64, table_gen: u64) -> bool {
        self.code_version == code_version && self.table_gen == table_gen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_matches_only_its_own_snapshot() {
        let k = TableKey::new(3, 7);
        assert!(k.matches(3, 7));
        assert!(!k.matches(4, 7), "code mutation invalidates");
        assert!(!k.matches(3, 8), "table store invalidates");
        assert_eq!(k, TableKey::new(3, 7));
    }

    #[test]
    fn default_key_is_the_zero_snapshot() {
        assert!(TableKey::default().matches(0, 0));
    }
}
