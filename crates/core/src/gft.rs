//! Global-frame-table entries (paper §5.1).
//!
//! The GFT has a 16-bit entry for each module instance. Global frames
//! are limited to a 64 K segment and are quad-aligned, "hence 14 bits is
//! enough to address a global frame. … The two spare bits in a GFT entry
//! are used to specify a bias for the entry point, in multiples of 32."

use std::fmt;

use fpc_mem::WordAddr;

use crate::context::PackError;

/// A packed global-frame-table entry: 14 bits of quad-aligned global
/// frame address plus a 2-bit entry-point bias.
///
/// The bias is the paper's escape hatch for modules with more than 32
/// entry points: up to four GFT entries may point at the same global
/// frame with biases 0–3, giving `bias * 32 + evIndex` as the effective
/// entry index, for a limit of 128.
///
/// ```
/// use fpc_core::GftEntry;
/// use fpc_mem::WordAddr;
///
/// let e = GftEntry::new(WordAddr(0x0100), 1).unwrap();
/// assert_eq!(e.global_frame(), WordAddr(0x0100));
/// assert_eq!(e.bias(), 1);
/// assert_eq!(e.effective_ev_index(5), 37);
/// let packed = e.raw();
/// assert_eq!(GftEntry::from_raw(packed), e);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GftEntry(u16);

impl GftEntry {
    /// Entries per bias step (the five-bit EV index range).
    pub const BIAS_STEP: u16 = 32;

    /// Creates an entry for a quad-aligned global frame address and a
    /// bias in `0..4`.
    ///
    /// # Errors
    ///
    /// Returns [`PackError`] if the address is not quad-aligned, does
    /// not fit in 16 bits, or the bias exceeds 3.
    pub fn new(global_frame: WordAddr, bias: u8) -> Result<Self, PackError> {
        if !global_frame.0.is_multiple_of(4) {
            return Err(PackError::new("global frame alignment", global_frame.0, 4));
        }
        if global_frame.0 >= 1 << 16 {
            return Err(PackError::new(
                "global frame address",
                global_frame.0,
                (1 << 16) - 1,
            ));
        }
        if bias > 3 {
            return Err(PackError::new("GFT bias", bias as u32, 3));
        }
        Ok(GftEntry(((global_frame.0 as u16 >> 2) << 2) | bias as u16))
    }

    /// Reconstructs an entry from its in-memory representation.
    pub fn from_raw(raw: u16) -> Self {
        GftEntry(raw)
    }

    /// The in-memory representation.
    pub fn raw(self) -> u16 {
        self.0
    }

    /// The global frame's word address (quad-aligned).
    pub fn global_frame(self) -> WordAddr {
        WordAddr(((self.0 >> 2) as u32) << 2)
    }

    /// The 2-bit entry-point bias.
    pub fn bias(self) -> u8 {
        (self.0 & 0b11) as u8
    }

    /// The effective entry-vector index for a five-bit `code` field:
    /// `bias * 32 + code`.
    pub fn effective_ev_index(self, code: u8) -> u16 {
        self.bias() as u16 * Self::BIAS_STEP + code as u16
    }
}

impl fmt::Display for GftEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gft[gf={}, bias={}]", self.global_frame(), self.bias())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_address_and_bias() {
        for bias in 0..4u8 {
            let e = GftEntry::new(WordAddr(0x2000), bias).unwrap();
            assert_eq!(e.global_frame(), WordAddr(0x2000));
            assert_eq!(e.bias(), bias);
            assert_eq!(GftEntry::from_raw(e.raw()), e);
        }
    }

    #[test]
    fn rejects_misaligned() {
        assert!(GftEntry::new(WordAddr(0x2002), 0).is_err());
    }

    #[test]
    fn rejects_large_bias() {
        assert!(GftEntry::new(WordAddr(0x2000), 4).is_err());
    }

    #[test]
    fn rejects_out_of_segment() {
        assert!(GftEntry::new(WordAddr(1 << 16), 0).is_err());
        assert!(GftEntry::new(WordAddr((1 << 16) - 4), 3).is_ok());
    }

    #[test]
    fn bias_extends_entry_points() {
        let e = GftEntry::new(WordAddr(0x0040), 3).unwrap();
        assert_eq!(e.effective_ev_index(31), 127);
    }

    #[test]
    fn display_formats() {
        let e = GftEntry::new(WordAddr(0x0040), 2).unwrap();
        assert!(e.to_string().contains("bias=2"));
    }
}
