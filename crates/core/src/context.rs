//! Contexts and their packed 16-bit representation (paper §4–§5.1).
//!
//! A context is "a variant record" (§4):
//!
//! ```text
//! Context: TYPE = RECORD [
//!   CASE tag: {frame, proc} OF
//!     frame => [ FramePointer ];
//!     proc  => [ code: ProcPointer, env: EnvPointer ]
//!   ENDCASE ]
//! ```
//!
//! The Mesa encoding packs this into one 16-bit word (§5.1): a one-bit
//! tag, a ten-bit `env` field (a global-frame-table index) and a
//! five-bit `code` field (an entry-vector index). The frame case holds
//! a frame pointer; frames are two-word aligned so 15 bits of handle
//! cover a 64 K-word space. The all-zero word is `NIL`.

use std::fmt;

use fpc_mem::WordAddr;

/// Error packing a value into a bit-limited field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackError {
    what: &'static str,
    value: u32,
    limit: u32,
}

impl PackError {
    /// Crate-internal constructor used by the other packing types.
    pub(crate) fn new(what: &'static str, value: u32, limit: u32) -> Self {
        PackError { what, value, limit }
    }
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} value {} does not fit (limit {})",
            self.what, self.value, self.limit
        )
    }
}

impl std::error::Error for PackError {}

/// A ten-bit global-frame-table index: the `env` field of a packed
/// procedure descriptor. At most 1024 module instances are addressable,
/// exactly as in the Mesa encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GftIndex(u16);

impl GftIndex {
    /// Number of representable indices (2^10).
    pub const LIMIT: u16 = 1 << 10;

    /// Creates an index, checking the ten-bit limit.
    ///
    /// # Errors
    ///
    /// Returns [`PackError`] if `index >= 1024`.
    pub fn new(index: u16) -> Result<Self, PackError> {
        if index < Self::LIMIT {
            Ok(GftIndex(index))
        } else {
            Err(PackError {
                what: "GFT index",
                value: index as u32,
                limit: Self::LIMIT as u32 - 1,
            })
        }
    }

    /// The raw index.
    pub fn get(self) -> u16 {
        self.0
    }
}

/// A five-bit entry-vector index: the `code` field of a packed procedure
/// descriptor. A module can name at most 32 entry points through one GFT
/// entry; the 2-bit **bias** in the GFT entry extends this to 128 (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EvIndex(u8);

impl EvIndex {
    /// Number of representable indices (2^5).
    pub const LIMIT: u8 = 1 << 5;

    /// Creates an index, checking the five-bit limit.
    ///
    /// # Errors
    ///
    /// Returns [`PackError`] if `index >= 32`.
    pub fn new(index: u8) -> Result<Self, PackError> {
        if index < Self::LIMIT {
            Ok(EvIndex(index))
        } else {
            Err(PackError {
                what: "EV index",
                value: index as u32,
                limit: Self::LIMIT as u32 - 1,
            })
        }
    }

    /// The raw index.
    pub fn get(self) -> u8 {
        self.0
    }
}

/// A packed procedure descriptor: `(env, code)` — which module instance,
/// which entry point. An `XFER` to such a context creates a fresh frame
/// for the procedure and forwards control to it (the paper's "creation
/// context" made concrete).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcDesc {
    env: GftIndex,
    code: EvIndex,
}

impl ProcDesc {
    /// Creates a descriptor from its two fields.
    pub fn new(env: GftIndex, code: EvIndex) -> Self {
        ProcDesc { env, code }
    }

    /// The ten-bit GFT index selecting the module instance.
    pub fn env(self) -> GftIndex {
        self.env
    }

    /// The five-bit entry-vector index selecting the procedure.
    pub fn code(self) -> EvIndex {
        self.code
    }
}

impl fmt::Display for ProcDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc[gft={}, ev={}]", self.env.get(), self.code.get())
    }
}

/// A handle to an existing local frame: a 15-bit quantity addressing a
/// two-word-aligned frame in a 64 K-word space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameHandle(u16);

impl FrameHandle {
    /// Creates a handle from a frame's word address.
    ///
    /// # Errors
    ///
    /// Returns [`PackError`] if the address is not two-word aligned, is
    /// nil, or does not fit in 16 bits.
    pub fn from_addr(addr: WordAddr) -> Result<Self, PackError> {
        if addr.is_nil() {
            return Err(PackError {
                what: "frame address (nil)",
                value: 0,
                limit: 0,
            });
        }
        if !addr.0.is_multiple_of(2) {
            return Err(PackError {
                what: "frame alignment",
                value: addr.0,
                limit: 2,
            });
        }
        if addr.0 >= (1 << 16) {
            return Err(PackError {
                what: "frame address",
                value: addr.0,
                limit: (1 << 16) - 1,
            });
        }
        Ok(FrameHandle((addr.0 >> 1) as u16))
    }

    /// The frame's word address.
    pub fn addr(self) -> WordAddr {
        WordAddr((self.0 as u32) << 1)
    }
}

impl fmt::Display for FrameHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame[{}]", self.addr())
    }
}

/// The unpacked context variant record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Context {
    /// No context; returning through `NIL` is an error, which is the
    /// point — `returnContext` is set to `Nil` by a return so a double
    /// return traps (§4).
    #[default]
    Nil,
    /// A reference to an already-existing context (a local frame).
    Frame(FrameHandle),
    /// A procedure descriptor — the abstract creation context.
    Proc(ProcDesc),
}

impl Context {
    /// Whether this is `Nil`.
    pub fn is_nil(self) -> bool {
        self == Context::Nil
    }
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Context::Nil => write!(f, "NIL"),
            Context::Frame(h) => write!(f, "{h}"),
            Context::Proc(p) => write!(f, "{p}"),
        }
    }
}

/// The packed 16-bit context word of §5.1.
///
/// Layout (bit 15 is the most significant):
///
/// ```text
/// bit 15     : tag — 0 = frame, 1 = procedure descriptor
/// frame case : bits 0..=14 hold frameAddr >> 1 (two-word aligned)
/// proc case  : bits 5..=14 hold the GFT index, bits 0..=4 the EV index
/// 0x0000     : NIL (frame tag with handle 0, which is never a frame)
/// ```
///
/// ```
/// use fpc_core::{Context, ContextWord};
///
/// assert_eq!(ContextWord::NIL.raw(), 0);
/// assert_eq!(Context::from(ContextWord::NIL), Context::Nil);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ContextWord(u16);

impl ContextWord {
    /// The nil context word (all zeros).
    pub const NIL: ContextWord = ContextWord(0);

    const TAG_PROC: u16 = 1 << 15;

    /// Reconstructs a context word from its raw 16-bit representation
    /// (e.g. read out of a frame's return-link word).
    pub fn from_raw(raw: u16) -> Self {
        ContextWord(raw)
    }

    /// The raw 16-bit representation, as stored in memory.
    pub fn raw(self) -> u16 {
        self.0
    }

    /// Whether this is the nil context.
    pub fn is_nil(self) -> bool {
        self.0 == 0
    }

    /// Whether the tag bit says "procedure descriptor".
    pub fn is_proc(self) -> bool {
        self.0 & Self::TAG_PROC != 0
    }

    /// Whether this is a (non-nil) frame reference.
    pub fn is_frame(self) -> bool {
        !self.is_nil() && !self.is_proc()
    }
}

impl From<Context> for ContextWord {
    fn from(ctx: Context) -> ContextWord {
        match ctx {
            Context::Nil => ContextWord::NIL,
            Context::Frame(h) => ContextWord(h.0),
            Context::Proc(p) => {
                ContextWord(ContextWord::TAG_PROC | ((p.env.get()) << 5) | p.code.get() as u16)
            }
        }
    }
}

impl From<ContextWord> for Context {
    fn from(w: ContextWord) -> Context {
        if w.is_nil() {
            Context::Nil
        } else if w.is_proc() {
            let env = GftIndex((w.0 >> 5) & 0x3FF);
            let code = EvIndex((w.0 & 0x1F) as u8);
            Context::Proc(ProcDesc { env, code })
        } else {
            Context::Frame(FrameHandle(w.0))
        }
    }
}

impl fmt::Display for ContextWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", Context::from(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nil_round_trips() {
        let w = ContextWord::from(Context::Nil);
        assert!(w.is_nil());
        assert!(!w.is_frame());
        assert!(!w.is_proc());
        assert_eq!(Context::from(w), Context::Nil);
    }

    #[test]
    fn frame_round_trips() {
        let h = FrameHandle::from_addr(WordAddr(0x1234 & !1)).unwrap();
        let w = ContextWord::from(Context::Frame(h));
        assert!(w.is_frame());
        assert_eq!(Context::from(w), Context::Frame(h));
        assert_eq!(h.addr(), WordAddr(0x1234));
    }

    #[test]
    fn proc_round_trips() {
        let p = ProcDesc::new(GftIndex::new(1023).unwrap(), EvIndex::new(31).unwrap());
        let w = ContextWord::from(Context::Proc(p));
        assert!(w.is_proc());
        assert_eq!(Context::from(w), Context::Proc(p));
    }

    #[test]
    fn gft_index_limit_enforced() {
        assert!(GftIndex::new(1023).is_ok());
        let err = GftIndex::new(1024).unwrap_err();
        assert!(err.to_string().contains("GFT index"));
    }

    #[test]
    fn ev_index_limit_enforced() {
        assert!(EvIndex::new(31).is_ok());
        assert!(EvIndex::new(32).is_err());
    }

    #[test]
    fn frame_handle_rejects_misaligned_nil_and_big() {
        assert!(FrameHandle::from_addr(WordAddr(3)).is_err());
        assert!(FrameHandle::from_addr(WordAddr::NIL).is_err());
        assert!(FrameHandle::from_addr(WordAddr(1 << 16)).is_err());
        assert!(FrameHandle::from_addr(WordAddr((1 << 16) - 2)).is_ok());
    }

    #[test]
    fn packed_forms_are_disjoint() {
        // A frame handle for the largest address cannot collide with a
        // proc descriptor: the tag bit separates them.
        let h = FrameHandle::from_addr(WordAddr(0xFFFE)).unwrap();
        let wf = ContextWord::from(Context::Frame(h));
        assert!(!wf.is_proc());
        let p = ProcDesc::new(GftIndex::new(0).unwrap(), EvIndex::new(0).unwrap());
        let wp = ContextWord::from(Context::Proc(p));
        assert!(wp.is_proc());
        assert_ne!(wf, wp);
    }

    #[test]
    fn display_forms() {
        let p = ProcDesc::new(GftIndex::new(2).unwrap(), EvIndex::new(4).unwrap());
        assert_eq!(p.to_string(), "proc[gft=2, ev=4]");
        assert_eq!(Context::Nil.to_string(), "NIL");
    }
}
