#![warn(missing_docs)]
//! The control-transfer model of Lampson's *Fast Procedure Calls*
//! (ASPLOS 1982).
//!
//! The paper's abstraction (§3) has two elements: **contexts** — the
//! entities among which control is transferred — and **`XFER`** — the
//! single primitive that transfers control, working with two globals,
//! `returnContext` and `argumentRecord`. Procedure call, return,
//! coroutine transfer, exceptions and process switches are all patterns
//! of `XFER`, distinguished by the destination, not the caller (the
//! paper's feature F3).
//!
//! This crate provides:
//!
//! * [`ContextWord`] / [`Context`] — the packed 16-bit context
//!   representation of §5.1 (1-bit tag, 10-bit GFT index, 5-bit entry
//!   index) and its unpacked form;
//! * [`GftEntry`] — packed global-frame-table entries (14-bit
//!   quad-aligned address + 2-bit entry-point bias);
//! * [`layout`] — the frame and procedure-header layouts shared by the
//!   compiler (`fpc-compiler`) and the interpreters (`fpc-vm`);
//! * [`tables`] — the quantitative model behind the paper's point T1
//!   (replace an `f`-bit address used `n` times by an `i`-bit table
//!   index: `n·f` vs `n·i + f` bits);
//! * [`model`] — a direct, executable rendering of the §3 abstract
//!   machine, independent of the byte-coded implementations, used to
//!   state and test the model-level invariants F1–F4.
//!
//! # Example
//!
//! ```
//! use fpc_core::{Context, ContextWord, EvIndex, GftIndex, ProcDesc};
//!
//! // A procedure descriptor: (environment, entry point), packed into
//! // one 16-bit word exactly as in the Mesa encoding.
//! let desc = ProcDesc::new(GftIndex::new(3).unwrap(), EvIndex::new(7).unwrap());
//! let w = ContextWord::from(Context::Proc(desc));
//! assert_eq!(Context::from(w), Context::Proc(desc));
//! ```

mod context;
pub mod generation;
mod gft;
pub mod layout;
pub mod model;
pub mod tables;

pub use context::{Context, ContextWord, EvIndex, FrameHandle, GftIndex, PackError, ProcDesc};
pub use generation::TableKey;
pub use gft::GftEntry;
