//! An executable rendering of the paper's §3 abstract transfer model.
//!
//! This is the level "the source language programmer deals with": a
//! small arena of first-class **contexts** and a single **`XFER`**
//! primitive working with the two globals `returnContext` and
//! `argumentRecord`. The byte-coded implementations in `fpc-vm` realise
//! the same model; this module states it directly so the model-level
//! invariants can be tested without any encoding concerns:
//!
//! * **F1** — everything needed to resume execution is in the context;
//! * **F2** — contexts are first-class, explicitly allocated and freed,
//!   not necessarily in LIFO order;
//! * **F3** — any context may be the argument of any `XFER`; the
//!   discipline (call, coroutine, …) is chosen by the destination;
//! * **F4** — arguments and results travel symmetrically, both in the
//!   argument record.
//!
//! # Example: an ordinary call
//!
//! ```
//! use fpc_core::model::{Machine, Op, Procedure, Val};
//!
//! let mut m = Machine::new();
//! let double = m.define(Procedure::new("double", 1, vec![
//!     Op::TakeArgs(1),
//!     Op::PushLocal(0), Op::PushLocal(0), Op::Add,
//!     Op::Return(1),
//! ]));
//! let main = m.define(Procedure::new("main", 0, vec![
//!     Op::TakeArgs(0),
//!     Op::PushConst(21),
//!     Op::Call { proc: double, nargs: 1 },
//!     Op::TakeResults(1),
//!     Op::Emit,
//!     Op::Halt,
//! ]));
//! let out = m.run(main, &[], 10_000).unwrap();
//! assert_eq!(out, vec![42]);
//! ```

use std::fmt;
use std::rc::Rc;

/// A value in the model: an integer or a first-class context reference.
///
/// Contexts-as-values is the point of the model (feature F2/F3): a
/// coroutine is just a context value you keep and `XFER` to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Val {
    /// An integer.
    Int(i64),
    /// The nil context.
    #[default]
    Nil,
    /// A live context (e.g. a coroutine, or a return link).
    Ctx(ContextId),
    /// A procedure descriptor: the abstract creation context.
    Proc(ProcId),
}

impl Val {
    fn as_int(self) -> Result<i64, ModelError> {
        match self {
            Val::Int(i) => Ok(i),
            other => Err(ModelError::TypeMismatch {
                expected: "int",
                got: other,
            }),
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Int(i) => write!(f, "{i}"),
            Val::Ctx(c) => write!(f, "ctx#{}", c.0),
            Val::Proc(p) => write!(f, "proc#{}", p.0),
            Val::Nil => write!(f, "NIL"),
        }
    }
}

/// Identifies a procedure defined on a [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcId(usize);

/// Identifies a live context in the machine's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContextId(usize);

/// Instructions of the model machine.
///
/// These are deliberately higher-level than the byte code: the model is
/// about transfers, so everything else is minimal scaffolding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Prologue: move the first `n` values of the argument record into
    /// locals `0..n` and save `returnContext` into the return link.
    TakeArgs(usize),
    /// Push local `i`.
    PushLocal(usize),
    /// Pop into local `i`.
    StoreLocal(usize),
    /// Push a constant.
    PushConst(i64),
    /// Pop b, pop a, push a + b.
    Add,
    /// Pop b, pop a, push a − b.
    Sub,
    /// Pop b, pop a, push a × b.
    Mul,
    /// Pop b, pop a, push 1 if a < b else 0.
    Lt,
    /// Unconditional jump to instruction index.
    Jump(usize),
    /// Pop; jump to instruction index if zero.
    BranchIfZero(usize),
    /// Call a fixed procedure: move the top `nargs` stack values into
    /// the argument record (in order), set `returnContext` to the
    /// current context, and `XFER` to the procedure descriptor.
    Call {
        /// The callee's descriptor.
        proc: ProcId,
        /// Stack values moved into the argument record.
        nargs: usize,
    },
    /// Epilogue for returning control after a `Call`: move `n` argument-
    /// record values back onto the stack.
    TakeResults(usize),
    /// Return: move the top `n` stack values into the argument record,
    /// retrieve the return link, free this context (unless retained),
    /// set `returnContext` to nil, and `XFER` to the link (§4).
    Return(usize),
    /// General transfer (coroutines et al.): pop the destination
    /// context value, move the top `n` values into the argument record,
    /// set `returnContext` to the current context, and `XFER`.
    Xfer {
        /// Stack values carried in the argument record.
        nvals: usize,
    },
    /// Create a suspended context for a procedure and push it (F2).
    /// The new context starts at its first instruction when first
    /// transferred to.
    NewContext(ProcId),
    /// Push the current `returnContext` (to capture a coroutine peer).
    PushReturnContext,
    /// Mark the current context retained: a return will not free it.
    Retain,
    /// Pop and append to the machine's output.
    Emit,
    /// Stop execution.
    Halt,
}

/// A procedure definition: name, local count and body.
#[derive(Debug, Clone)]
pub struct Procedure {
    name: Rc<str>,
    nlocals: usize,
    code: Rc<[Op]>,
}

impl Procedure {
    /// Defines a procedure with `nlocals` locals (arguments included).
    pub fn new(name: &str, nlocals: usize, code: Vec<Op>) -> Self {
        Procedure {
            name: name.into(),
            nlocals,
            code: code.into(),
        }
    }

    /// The procedure's name, for traces and errors.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Errors the model machine can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// `XFER` through the nil context — e.g. a second return (§4: "an
    /// attempt to return from this return would be an error").
    XferToNil,
    /// A context value was used after the context was freed. The simple
    /// implementation's invariant — one reference per frame — makes
    /// this impossible for conventional calls; it arises only from
    /// misuse of retained/coroutine contexts.
    UseAfterFree(ContextId),
    /// Evaluation-stack underflow.
    StackUnderflow,
    /// The argument record held fewer values than requested.
    ArgumentRecordUnderflow {
        /// Values requested by `TakeArgs`/`TakeResults`.
        wanted: usize,
        /// Values actually in the record.
        had: usize,
    },
    /// A value had the wrong kind.
    TypeMismatch {
        /// What the operation needed.
        expected: &'static str,
        /// What it found.
        got: Val,
    },
    /// The step budget was exhausted before `Halt`.
    OutOfFuel,
    /// Jump target outside the procedure body.
    BadJump(usize),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::XferToNil => write!(f, "XFER to NIL context"),
            ModelError::UseAfterFree(c) => write!(f, "use of freed context #{}", c.0),
            ModelError::StackUnderflow => write!(f, "evaluation stack underflow"),
            ModelError::ArgumentRecordUnderflow { wanted, had } => {
                write!(f, "argument record underflow: wanted {wanted}, had {had}")
            }
            ModelError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            ModelError::OutOfFuel => write!(f, "step budget exhausted"),
            ModelError::BadJump(t) => write!(f, "jump target {t} out of range"),
        }
    }
}

impl std::error::Error for ModelError {}

#[derive(Debug)]
struct ContextState {
    proc: ProcId,
    pc: usize,
    locals: Vec<Val>,
    stack: Vec<Val>,
    return_link: Val,
    retained: bool,
}

/// The abstract machine: procedures, a context arena, the two `XFER`
/// globals, and an output stream.
#[derive(Debug, Default)]
pub struct Machine {
    procs: Vec<Procedure>,
    contexts: Vec<Option<ContextState>>,
    /// `returnContext` — "the context to which control should return".
    return_context: Val,
    /// `argumentRecord` — "the arguments being passed in the transfer".
    argument_record: Vec<Val>,
    output: Vec<i64>,
    live_contexts: usize,
    peak_contexts: usize,
    xfers: u64,
}

impl Machine {
    /// Creates an empty machine.
    pub fn new() -> Self {
        Machine {
            return_context: Val::Nil,
            ..Default::default()
        }
    }

    /// Defines a procedure and returns its descriptor id.
    pub fn define(&mut self, proc: Procedure) -> ProcId {
        self.procs.push(proc);
        ProcId(self.procs.len() - 1)
    }

    /// Creates a suspended context for `proc` (host-side counterpart of
    /// [`Op::NewContext`]).
    pub fn create_context(&mut self, proc: ProcId) -> ContextId {
        let nlocals = self.procs[proc.0].nlocals;
        let state = ContextState {
            proc,
            pc: 0,
            locals: vec![Val::Int(0); nlocals],
            stack: Vec::new(),
            return_link: Val::Nil,
            retained: false,
        };
        self.contexts.push(Some(state));
        self.live_contexts += 1;
        self.peak_contexts = self.peak_contexts.max(self.live_contexts);
        ContextId(self.contexts.len() - 1)
    }

    /// Marks a context retained so returns will not free it (§4's
    /// "retained frames").
    ///
    /// # Panics
    ///
    /// Panics if the context is already freed.
    pub fn retain(&mut self, ctx: ContextId) {
        self.contexts[ctx.0]
            .as_mut()
            .expect("retain of freed context")
            .retained = true;
    }

    /// Number of currently live contexts.
    pub fn live_contexts(&self) -> usize {
        self.live_contexts
    }

    /// High-water mark of live contexts.
    pub fn peak_contexts(&self) -> usize {
        self.peak_contexts
    }

    /// Number of `XFER`s performed so far.
    pub fn xfers(&self) -> u64 {
        self.xfers
    }

    /// Runs `entry` with the given arguments until `Halt`, returning the
    /// output stream.
    ///
    /// # Errors
    ///
    /// Any [`ModelError`] raised during execution, including
    /// [`ModelError::OutOfFuel`] if `fuel` steps were not enough.
    pub fn run(&mut self, entry: ProcId, args: &[Val], fuel: u64) -> Result<Vec<i64>, ModelError> {
        self.argument_record = args.to_vec();
        self.return_context = Val::Nil;
        let root = self.create_context(entry);
        let mut current = root;
        let mut remaining = fuel;
        loop {
            if remaining == 0 {
                return Err(ModelError::OutOfFuel);
            }
            remaining -= 1;
            match self.step(current)? {
                Step::Continue => {}
                Step::Xfer(dest) => {
                    current = self.xfer(current, dest)?;
                }
                Step::Halt => break,
            }
        }
        Ok(std::mem::take(&mut self.output))
    }

    /// The `XFER` primitive: suspend `from`, resume (or create) the
    /// destination. `returnContext` and `argumentRecord` are left
    /// untouched — the transfer disciplines set them up beforehand.
    fn xfer(&mut self, _from: ContextId, dest: Val) -> Result<ContextId, ModelError> {
        self.xfers += 1;
        match dest {
            Val::Nil => Err(ModelError::XferToNil),
            Val::Ctx(id) => {
                if self.contexts[id.0].is_none() {
                    return Err(ModelError::UseAfterFree(id));
                }
                Ok(id)
            }
            Val::Proc(p) => {
                // The creation context: "on each iteration it creates a
                // new context for the procedure, and forwards control to
                // it", with returnContext and argumentRecord unchanged.
                Ok(self.create_context(p))
            }
            Val::Int(_) => Err(ModelError::TypeMismatch {
                expected: "context",
                got: dest,
            }),
        }
    }

    fn free(&mut self, ctx: ContextId) {
        if self.contexts[ctx.0].take().is_some() {
            self.live_contexts -= 1;
        }
    }

    fn step(&mut self, current: ContextId) -> Result<Step, ModelError> {
        let state = self.contexts[current.0]
            .as_mut()
            .ok_or(ModelError::UseAfterFree(current))?;
        let code = Rc::clone(&self.procs[state.proc.0].code);
        if state.pc >= code.len() {
            // Falling off the end is an implicit halt; well-formed
            // programs end with Return or Halt.
            return Ok(Step::Halt);
        }
        let op = code[state.pc].clone();
        state.pc += 1;
        match op {
            Op::TakeArgs(n) => {
                if self.argument_record.len() < n {
                    return Err(ModelError::ArgumentRecordUnderflow {
                        wanted: n,
                        had: self.argument_record.len(),
                    });
                }
                let state = self.contexts[current.0].as_mut().unwrap();
                for (i, v) in self.argument_record.drain(..n).enumerate() {
                    state.locals[i] = v;
                }
                state.return_link = self.return_context;
            }
            Op::PushLocal(i) => state.stack.push(state.locals[i]),
            Op::StoreLocal(i) => {
                let v = state.stack.pop().ok_or(ModelError::StackUnderflow)?;
                state.locals[i] = v;
            }
            Op::PushConst(c) => state.stack.push(Val::Int(c)),
            Op::Add | Op::Sub | Op::Mul | Op::Lt => {
                let b = state
                    .stack
                    .pop()
                    .ok_or(ModelError::StackUnderflow)?
                    .as_int()?;
                let a = state
                    .stack
                    .pop()
                    .ok_or(ModelError::StackUnderflow)?
                    .as_int()?;
                let r = match op {
                    Op::Add => a.wrapping_add(b),
                    Op::Sub => a.wrapping_sub(b),
                    Op::Mul => a.wrapping_mul(b),
                    Op::Lt => (a < b) as i64,
                    // Audited: not guest-reachable. The enclosing arm
                    // matches only Add | Sub | Mul | Lt, so `op` cannot
                    // be any other variant here.
                    _ => unreachable!(),
                };
                let state = self.contexts[current.0].as_mut().unwrap();
                state.stack.push(Val::Int(r));
            }
            Op::Jump(t) => {
                if t > code.len() {
                    return Err(ModelError::BadJump(t));
                }
                state.pc = t;
            }
            Op::BranchIfZero(t) => {
                let v = state
                    .stack
                    .pop()
                    .ok_or(ModelError::StackUnderflow)?
                    .as_int()?;
                if v == 0 {
                    if t > code.len() {
                        return Err(ModelError::BadJump(t));
                    }
                    self.contexts[current.0].as_mut().unwrap().pc = t;
                }
            }
            Op::Call { proc, nargs } => {
                if state.stack.len() < nargs {
                    return Err(ModelError::StackUnderflow);
                }
                let args = state.stack.split_off(state.stack.len() - nargs);
                self.argument_record = args;
                self.return_context = Val::Ctx(current);
                return Ok(Step::Xfer(Val::Proc(proc)));
            }
            Op::TakeResults(n) => {
                if self.argument_record.len() < n {
                    return Err(ModelError::ArgumentRecordUnderflow {
                        wanted: n,
                        had: self.argument_record.len(),
                    });
                }
                let vals: Vec<Val> = self.argument_record.drain(..n).collect();
                let state = self.contexts[current.0].as_mut().unwrap();
                state.stack.extend(vals);
            }
            Op::Return(n) => {
                if state.stack.len() < n {
                    return Err(ModelError::StackUnderflow);
                }
                let results = state.stack.split_off(state.stack.len() - n);
                let link = state.return_link;
                let retained = state.retained;
                self.argument_record = results;
                // "RETURN retrieves the returnLink, frees the context,
                // sets returnContext to NIL, and then does
                // XFER[returnLink]."
                self.return_context = Val::Nil;
                if !retained {
                    self.free(current);
                }
                return Ok(Step::Xfer(link));
            }
            Op::Xfer { nvals } => {
                let dest = state.stack.pop().ok_or(ModelError::StackUnderflow)?;
                if state.stack.len() < nvals {
                    return Err(ModelError::StackUnderflow);
                }
                let vals = state.stack.split_off(state.stack.len() - nvals);
                self.argument_record = vals;
                self.return_context = Val::Ctx(current);
                return Ok(Step::Xfer(dest));
            }
            Op::NewContext(p) => {
                let ctx = self.create_context(p);
                let state = self.contexts[current.0].as_mut().unwrap();
                state.stack.push(Val::Ctx(ctx));
            }
            Op::PushReturnContext => {
                let rc = self.return_context;
                state.stack.push(rc);
            }
            Op::Retain => state.retained = true,
            Op::Emit => {
                let v = state
                    .stack
                    .pop()
                    .ok_or(ModelError::StackUnderflow)?
                    .as_int()?;
                self.output.push(v);
            }
            Op::Halt => return Ok(Step::Halt),
        }
        Ok(Step::Continue)
    }
}

enum Step {
    Continue,
    Xfer(Val),
    Halt,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib_machine() -> (Machine, ProcId) {
        let mut m = Machine::new();
        // fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
        let fib = ProcId(0); // forward reference to ourselves
        let body = vec![
            Op::TakeArgs(1),
            Op::PushLocal(0),
            Op::PushConst(2),
            Op::Lt,
            Op::BranchIfZero(7),
            Op::PushLocal(0),
            Op::Return(1),
            // else
            Op::PushLocal(0),
            Op::PushConst(1),
            Op::Sub,
            Op::Call {
                proc: fib,
                nargs: 1,
            },
            Op::TakeResults(1),
            Op::PushLocal(0),
            Op::PushConst(2),
            Op::Sub,
            Op::Call {
                proc: fib,
                nargs: 1,
            },
            Op::TakeResults(1),
            Op::Add,
            Op::Return(1),
        ];
        let id = m.define(Procedure::new("fib", 1, body));
        assert_eq!(id, fib);
        (m, fib)
    }

    #[test]
    fn recursive_fib_runs() {
        let (mut m, fib) = fib_machine();
        let main = m.define(Procedure::new(
            "main",
            0,
            vec![
                Op::TakeArgs(0),
                Op::PushConst(10),
                Op::Call {
                    proc: fib,
                    nargs: 1,
                },
                Op::TakeResults(1),
                Op::Emit,
                Op::Halt,
            ],
        ));
        let out = m.run(main, &[], 1_000_000).unwrap();
        assert_eq!(out, vec![55]);
    }

    #[test]
    fn frames_are_freed_on_return() {
        let (mut m, fib) = fib_machine();
        let main = m.define(Procedure::new(
            "main",
            0,
            vec![
                Op::TakeArgs(0),
                Op::PushConst(8),
                Op::Call {
                    proc: fib,
                    nargs: 1,
                },
                Op::TakeResults(1),
                Op::Emit,
                Op::Halt,
            ],
        ));
        let _ = m.run(main, &[], 1_000_000).unwrap();
        // Only main's own context remains live (it halted, not returned).
        assert_eq!(m.live_contexts(), 1);
        // Peak is the recursion depth + main, far below total calls.
        assert!(m.peak_contexts() <= 10);
        assert!(m.xfers() > 60); // fib(8) makes 67 calls/returns
    }

    #[test]
    fn double_return_is_an_error() {
        let mut m = Machine::new();
        // A procedure that returns twice: second return goes through the
        // freed/nil link.
        let bad = m.define(Procedure::new(
            "bad",
            0,
            vec![Op::TakeArgs(0), Op::Return(0)],
        ));
        let main = m.define(Procedure::new(
            "main",
            0,
            vec![
                Op::TakeArgs(0),
                Op::Call {
                    proc: bad,
                    nargs: 0,
                },
                // After bad returns, "return" again from main: our
                // return link is NIL because main was entered via run.
                Op::Return(0),
            ],
        ));
        let err = m.run(main, &[], 1000).unwrap_err();
        assert_eq!(err, ModelError::XferToNil);
    }

    #[test]
    fn coroutine_ping_pong() {
        let mut m = Machine::new();
        // A generator that yields 1, 2 to whoever transfers to it.
        // Its peer is captured from returnContext at first entry.
        let gen = m.define(Procedure::new(
            "gen",
            1,
            vec![
                Op::TakeArgs(0),
                Op::PushReturnContext,
                Op::StoreLocal(0), // peer
                Op::PushConst(1),
                Op::PushLocal(0),
                Op::Xfer { nvals: 1 }, // yield 1
                Op::PushReturnContext, // peer may have moved
                Op::StoreLocal(0),
                Op::PushConst(2),
                Op::PushLocal(0),
                Op::Xfer { nvals: 1 }, // yield 2
                Op::Halt,
            ],
        ));
        let main = m.define(Procedure::new(
            "main",
            1,
            vec![
                Op::TakeArgs(0),
                Op::NewContext(gen),
                Op::StoreLocal(0),
                // First transfer: receive 1.
                Op::PushLocal(0),
                Op::Xfer { nvals: 0 },
                Op::TakeResults(1),
                Op::Emit,
                // Second transfer: receive 2.
                Op::PushLocal(0),
                Op::Xfer { nvals: 0 },
                Op::TakeResults(1),
                Op::Emit,
                Op::Halt,
            ],
        ));
        let out = m.run(main, &[], 10_000).unwrap();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn xfer_discipline_chosen_by_destination() {
        // F3: the same Xfer op reaches a procedure descriptor (creating
        // a fresh activation) or an existing context (resuming it).
        let mut m = Machine::new();
        let emit_seven = m.define(Procedure::new(
            "seven",
            0,
            vec![Op::TakeArgs(0), Op::PushConst(7), Op::Return(1)],
        ));
        let main = m.define(Procedure::new(
            "main",
            1,
            vec![
                Op::TakeArgs(0),
                // Call via the generic Xfer by pushing a proc value...
                Op::NewContext(emit_seven),
                Op::StoreLocal(0),
                Op::PushLocal(0),
                Op::Xfer { nvals: 0 },
                Op::TakeResults(1),
                Op::Emit,
                Op::Halt,
            ],
        ));
        let out = m.run(main, &[], 10_000).unwrap();
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn out_of_fuel_reported() {
        let mut m = Machine::new();
        let spin = m.define(Procedure::new(
            "spin",
            0,
            vec![Op::TakeArgs(0), Op::Jump(1)],
        ));
        assert_eq!(m.run(spin, &[], 100).unwrap_err(), ModelError::OutOfFuel);
    }

    #[test]
    fn arguments_and_results_symmetric() {
        // F4: a procedure returning two results through the argument
        // record, consumed with TakeResults(2).
        let mut m = Machine::new();
        let divmod = m.define(Procedure::new(
            "pair",
            0,
            vec![
                Op::TakeArgs(0),
                Op::PushConst(3),
                Op::PushConst(4),
                Op::Return(2),
            ],
        ));
        let main = m.define(Procedure::new(
            "main",
            0,
            vec![
                Op::TakeArgs(0),
                Op::Call {
                    proc: divmod,
                    nargs: 0,
                },
                Op::TakeResults(2),
                Op::Emit, // 4 (top)
                Op::Emit, // 3
                Op::Halt,
            ],
        ));
        let out = m.run(main, &[], 1000).unwrap();
        assert_eq!(out, vec![4, 3]);
    }

    #[test]
    fn retained_context_survives_return() {
        let mut m = Machine::new();
        let keep = m.define(Procedure::new(
            "keep",
            0,
            vec![Op::TakeArgs(0), Op::Retain, Op::Return(0)],
        ));
        let main = m.define(Procedure::new(
            "main",
            0,
            vec![
                Op::TakeArgs(0),
                Op::Call {
                    proc: keep,
                    nargs: 0,
                },
                Op::Halt,
            ],
        ));
        let live_before = m.live_contexts();
        let _ = m.run(main, &[], 1000).unwrap();
        // main + the retained frame remain.
        assert_eq!(m.live_contexts(), live_before + 2);
    }

    #[test]
    fn args_are_passed_into_run() {
        let mut m = Machine::new();
        let echo = m.define(Procedure::new(
            "echo",
            1,
            vec![Op::TakeArgs(1), Op::PushLocal(0), Op::Emit, Op::Halt],
        ));
        let out = m.run(echo, &[Val::Int(99)], 100).unwrap();
        assert_eq!(out, vec![99]);
    }
}
