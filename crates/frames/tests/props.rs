//! Randomized tests for the frame heap: no double allocation, exact
//! reference costs, conservation of the region. Driven by the in-tree
//! seeded generator (the container builds offline, so these are
//! fuzz-style loops rather than proptest strategies).

use std::collections::HashSet;

use fpc_frames::{FrameHeap, SizeClasses};
use fpc_mem::{Memory, WordAddr};
use fpc_rng::Rng;

/// Under an arbitrary interleaving of allocations and frees, the heap
/// never hands out overlapping live frames, every fast-path alloc
/// costs exactly 3 references and every free exactly 4.
#[test]
fn no_overlap_and_exact_costs() {
    let mut rng = Rng::seed_from_u64(0xF8A3);
    for _ in 0..48 {
        let mut mem = Memory::new(0x10000);
        let mut heap = FrameHeap::new(
            &mut mem,
            WordAddr(0x10),
            SizeClasses::mesa(),
            0x100..0x10000,
        )
        .unwrap();
        let mut live: Vec<(WordAddr, u32)> = Vec::new();
        for _ in 0..rng.gen_range_u32(1, 200) {
            let words = rng.gen_range_u32(1, 199);
            if rng.gen_bool(0.5) && !live.is_empty() {
                let i = rng.gen_index(live.len());
                let (f, _) = live.swap_remove(i);
                let before = mem.stats();
                heap.free(&mut mem, f).unwrap();
                assert_eq!(mem.stats().since(before).total(), 4);
            } else {
                let before = mem.stats();
                let traps_before = heap.stats().traps;
                let f = heap.alloc(&mut mem, words).unwrap();
                if heap.stats().traps == traps_before {
                    assert_eq!(mem.stats().since(before).total(), 3);
                }
                let granted = heap.classes().size_of(heap.fsi_for(words).unwrap());
                assert!(granted >= words);
                live.push((f, granted));
            }
            // No two live frames overlap (including their hidden word).
            let mut spans: Vec<(u32, u32)> =
                live.iter().map(|&(f, g)| (f.0 - 1, f.0 + g)).collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap: {w:?}");
            }
        }
        // Frees leave no duplicates on the free lists: draining every
        // class yields distinct frames.
        for (f, _) in live.drain(..) {
            heap.free(&mut mem, f).unwrap();
        }
        let mut seen = HashSet::new();
        while let Ok(f) = heap.alloc(&mut mem, 9) {
            assert!(seen.insert(f.0), "frame {f} handed out twice");
        }
    }
}
