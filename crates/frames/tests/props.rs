//! Property tests for the frame heap: no double allocation, exact
//! reference costs, conservation of the region.

use proptest::prelude::*;
use std::collections::HashSet;

use fpc_frames::{FrameHeap, SizeClasses};
use fpc_mem::{Memory, WordAddr};

proptest! {
    /// Under an arbitrary interleaving of allocations and frees, the
    /// heap never hands out overlapping live frames, every fast-path
    /// alloc costs exactly 3 references and every free exactly 4.
    #[test]
    fn no_overlap_and_exact_costs(
        ops in prop::collection::vec((1u32..200, any::<bool>(), 0usize..16), 1..200),
    ) {
        let mut mem = Memory::new(0x10000);
        let mut heap = FrameHeap::new(
            &mut mem,
            WordAddr(0x10),
            SizeClasses::mesa(),
            0x100..0x10000,
        )
        .unwrap();
        let mut live: Vec<(WordAddr, u32)> = Vec::new();
        for (words, free_first, pick) in ops {
            if free_first && !live.is_empty() {
                let i = pick % live.len();
                let (f, _) = live.swap_remove(i);
                let before = mem.stats();
                heap.free(&mut mem, f).unwrap();
                prop_assert_eq!(mem.stats().since(before).total(), 4);
            } else {
                let before = mem.stats();
                let traps_before = heap.stats().traps;
                let f = heap.alloc(&mut mem, words).unwrap();
                if heap.stats().traps == traps_before {
                    prop_assert_eq!(mem.stats().since(before).total(), 3);
                }
                let granted = heap.classes().size_of(heap.fsi_for(words).unwrap());
                prop_assert!(granted >= words);
                live.push((f, granted));
            }
            // No two live frames overlap (including their hidden word).
            let mut spans: Vec<(u32, u32)> = live
                .iter()
                .map(|&(f, g)| (f.0 - 1, f.0 + g))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
            }
        }
        // Frees leave no duplicates on the free lists: draining every
        // class yields distinct frames.
        for (f, _) in live.drain(..) {
            heap.free(&mut mem, f).unwrap();
        }
        let mut seen = HashSet::new();
        while let Ok(f) = heap.alloc(&mut mem, 9) {
            prop_assert!(seen.insert(f.0), "frame {f} handed out twice");
        }
    }
}
