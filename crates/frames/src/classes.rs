//! Frame size classes: the geometric ladder behind the allocation
//! vector.
//!
//! "Frame sizes increase from a minimum of about 16 bytes in steps of
//! about 20%. … The choice of frame sizes is private to the compiler
//! (which assigns the frame size index values) and the software
//! allocator (which replenishes the free lists), and is not known to
//! the fast heap allocator." (§5.3)
//!
//! Sizes here are in 16-bit words and are rounded up to **odd** word
//! counts so that a frame block — one hidden size-index word followed
//! by the frame proper — occupies an even number of words, keeping
//! every frame two-word aligned as the packed context word requires.

/// The frame-size ladder.
///
/// ```
/// use fpc_frames::SizeClasses;
///
/// let c = SizeClasses::mesa();
/// let fsi = c.fsi_for(10).unwrap();
/// assert!(c.size_of(fsi) >= 10);
/// // Every class size is odd, so frames stay two-word aligned.
/// assert!(c.size_of(fsi) % 2 == 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeClasses {
    sizes: Vec<u32>,
}

impl SizeClasses {
    /// The largest frame-size index representable in a procedure
    /// header byte.
    pub const MAX_FSI: usize = 255;

    /// Builds a geometric ladder: the smallest class holds `min_words`,
    /// each subsequent class is `ratio` times larger (at least one word
    /// larger), until `max_words` is covered. All sizes are rounded up
    /// to odd word counts.
    ///
    /// # Panics
    ///
    /// Panics if `min_words` is zero, `ratio <= 1.0`, `max_words <
    /// min_words`, or more than 256 classes would be needed.
    pub fn geometric(min_words: u32, ratio: f64, max_words: u32) -> Self {
        assert!(min_words > 0, "minimum frame size must be positive");
        assert!(ratio > 1.0, "ratio must exceed 1");
        assert!(max_words >= min_words, "max below min");
        let mut sizes = Vec::new();
        let mut s = min_words | 1; // round up to odd
        loop {
            sizes.push(s);
            if s >= max_words {
                break;
            }
            let next = ((s as f64 * ratio).ceil() as u32).max(s + 2);
            s = next | 1;
            assert!(sizes.len() <= Self::MAX_FSI, "too many size classes");
        }
        SizeClasses { sizes }
    }

    /// The ladder used by the Mesa-style machine: minimum ≈16 bytes
    /// (9 words), ≈20% steps, covering frames up to several thousand
    /// bytes (2048 words).
    ///
    /// With a strict 20% step this takes 29 classes; the paper's
    /// "less than 20 steps" corresponds to slightly coarser steps over
    /// the same range — experiment E3 sweeps the ratio and shows the
    /// fragmentation/steps trade-off either way.
    pub fn mesa() -> Self {
        Self::geometric(9, 1.2, 2048)
    }

    /// A coarser ladder with under 20 steps covering the same range
    /// (ratio ≈ 1.35), matching the paper's step count at the price of
    /// more internal fragmentation.
    pub fn paper_nominal() -> Self {
        Self::geometric(9, 1.35, 2048)
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the ladder is empty (never true for constructed ladders).
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// The smallest class index whose size is at least `words`, or
    /// `None` if the request exceeds the largest class.
    pub fn fsi_for(&self, words: u32) -> Option<u8> {
        let idx = self.sizes.partition_point(|&s| s < words);
        (idx < self.sizes.len()).then_some(idx as u8)
    }

    /// The frame size (in words) of class `fsi`.
    ///
    /// # Panics
    ///
    /// Panics if `fsi` is out of range.
    pub fn size_of(&self, fsi: u8) -> u32 {
        self.sizes[fsi as usize]
    }

    /// The largest frame size covered.
    pub fn max_words(&self) -> u32 {
        *self.sizes.last().expect("ladder is never empty")
    }

    /// Iterates over `(fsi, words)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u8, u32)> + '_ {
        self.sizes.iter().enumerate().map(|(i, &s)| (i as u8, s))
    }

    /// Worst-case internal fragmentation of this ladder: the largest
    /// value of `1 − request/granted` over all request sizes, which is
    /// approached just above each class boundary.
    pub fn worst_case_fragmentation(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for w in self.sizes.windows(2) {
            // Request one word above the smaller class.
            let req = w[0] + 1;
            let frag = 1.0 - req as f64 / w[1] as f64;
            worst = worst.max(frag);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesa_ladder_shape() {
        let c = SizeClasses::mesa();
        assert!(
            c.len() < 32,
            "fsi must fit comfortably in a byte: {}",
            c.len()
        );
        assert!(c.max_words() >= 2048);
        assert_eq!(c.size_of(0), 9); // ≈16 bytes
                                     // Monotone strictly increasing, all odd.
        for (i, (_, s)) in c.iter().enumerate() {
            assert_eq!(s % 2, 1, "class {i} size {s} not odd");
            if i > 0 {
                assert!(s > c.size_of(i as u8 - 1));
            }
        }
    }

    #[test]
    fn paper_nominal_has_under_20_steps() {
        let c = SizeClasses::paper_nominal();
        assert!(c.len() < 20, "got {} classes", c.len());
        assert!(c.max_words() >= 2048);
    }

    #[test]
    fn fsi_for_picks_smallest_sufficient_class() {
        let c = SizeClasses::mesa();
        for req in 1..=c.max_words() {
            let fsi = c.fsi_for(req).unwrap();
            assert!(c.size_of(fsi) >= req);
            if fsi > 0 {
                assert!(
                    c.size_of(fsi - 1) < req,
                    "class {} would suffice for {req}",
                    fsi - 1
                );
            }
        }
    }

    #[test]
    fn oversize_request_is_none() {
        let c = SizeClasses::mesa();
        assert_eq!(c.fsi_for(c.max_words() + 1), None);
    }

    #[test]
    fn steps_are_about_twenty_percent() {
        let c = SizeClasses::mesa();
        for w in c.iter().collect::<Vec<_>>().windows(2) {
            let ratio = w[1].1 as f64 / w[0].1 as f64;
            // Small classes step coarser due to odd rounding; cap well
            // below a factor of 2.
            assert!(ratio > 1.0 && ratio < 1.6, "step {ratio}");
        }
    }

    #[test]
    fn worst_case_fragmentation_reasonable() {
        // ~20% steps mean worst-case internal waste just under ~17%,
        // consistent with the paper's ~10% average claim (average
        // requests sit midway into a class).
        let frag = SizeClasses::mesa().worst_case_fragmentation();
        assert!(frag < 0.35, "worst-case fragmentation {frag}");
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn ratio_must_exceed_one() {
        let _ = SizeClasses::geometric(9, 1.0, 100);
    }

    #[test]
    fn custom_ladder() {
        let c = SizeClasses::geometric(5, 2.0, 40);
        // 5, 11, 23, 47 (odd-rounded doubling)
        assert_eq!(c.len(), 4);
        assert_eq!(c.size_of(0), 5);
        assert!(c.max_words() >= 40);
    }
}
