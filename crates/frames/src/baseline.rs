//! Baseline allocators the paper compares against (implicitly):
//! a conventional general heap and a strictly LIFO stack.

use fpc_mem::WordAddr;

use crate::heap::FrameError;

/// A first-fit general heap with address-ordered free list and
//  coalescing, standing in for a conventional Algol/PL1 runtime
/// allocator ("it may be implemented by a runtime routine (this is
/// common in Algol and PL/1 implementations)", §4).
///
/// The free list is kept host-side but every operation **charges** the
/// memory references the equivalent in-memory structure would make:
/// two references per free-list node visited (size and next fields)
/// plus bookkeeping writes. Experiment E3 uses the charge to show the
/// gap to the 3/4-reference AV heap.
#[derive(Debug, Clone)]
pub struct GeneralHeap {
    /// Free blocks as (addr, words), address-ordered, coalesced.
    free: Vec<(u32, u32)>,
    /// Withheld tail block as (addr, words): not visible to first fit
    /// until donated (or emergency mode borrows from it).
    reserve: (u32, u32),
    /// While set, a failed first fit may carve from the reserve — the
    /// fault-dispatch guarantee, mirroring `FrameHeap::set_emergency`.
    emergency: bool,
    charged_refs: u64,
    allocs: u64,
    frees: u64,
}

impl GeneralHeap {
    /// Creates a heap owning `region` (start and length in words).
    ///
    /// The start is rounded up to an odd address and block sizes are
    /// kept even, so every allocated frame (one word past its header)
    /// is two-word aligned as the packed context word requires.
    ///
    /// # Panics
    ///
    /// Panics if the region is empty.
    pub fn new(start: u32, words: u32) -> Self {
        Self::with_reserve(start, words, 0)
    }

    /// Like [`GeneralHeap::new`] but withholds the last `reserve` words
    /// from the free list; only [`GeneralHeap::donate`] or emergency
    /// mode can reach them.
    ///
    /// # Panics
    ///
    /// Panics if the region minus the reserve is empty.
    pub fn with_reserve(start: u32, words: u32, reserve: u32) -> Self {
        assert!(words > reserve + 2, "empty region");
        let start = start | 1;
        // Even usable size keeps the reserve base odd, so emergency
        // frames (base + 1) stay two-word aligned like first-fit ones.
        let usable = if reserve == 0 {
            words - 1
        } else {
            (words - 1 - reserve) & !1
        };
        GeneralHeap {
            free: vec![(start, usable)],
            // Exactly the requested reserve; the odd slack word lost to
            // alignment rounding (if any) is simply never handed out.
            reserve: (start + usable, reserve),
            emergency: false,
            charged_refs: 0,
            allocs: 0,
            frees: 0,
        }
    }

    /// Words still held in reserve (donatable).
    pub fn reserve_words(&self) -> u32 {
        self.reserve.1
    }

    /// Releases up to `words` reserve words to the free list; returns
    /// the count granted. Charged like a free-list insertion.
    pub fn donate(&mut self, words: u32) -> u32 {
        // Whole word pairs only, preserving frame alignment.
        let granted = words.min(self.reserve.1) & !1;
        if granted == 0 {
            return 0;
        }
        let (addr, _) = self.reserve;
        self.reserve = (addr + granted, self.reserve.1 - granted);
        self.charged_refs += 3;
        // The reserve is the tail: the released block either follows the
        // last free block directly or forms a new one.
        match self.free.last_mut() {
            Some((a, s)) if *a + *s == addr => {
                *s += granted;
                self.charged_refs += 2;
            }
            _ => self.free.push((addr, granted)),
        }
        granted
    }

    /// Toggles emergency mode (carve handler frames from the reserve
    /// when first fit fails).
    pub fn set_emergency(&mut self, on: bool) {
        self.emergency = on;
    }

    /// Total modelled memory references charged so far.
    pub fn charged_refs(&self) -> u64 {
        self.charged_refs
    }

    /// Mean charged references per operation.
    pub fn refs_per_op(&self) -> f64 {
        let ops = self.allocs + self.frees;
        if ops == 0 {
            0.0
        } else {
            self.charged_refs as f64 / ops as f64
        }
    }

    /// Allocates `words` words, first fit.
    ///
    /// # Errors
    ///
    /// [`FrameError::OutOfMemory`] when no block fits.
    pub fn alloc(&mut self, words: u32) -> Result<WordAddr, FrameError> {
        // Header word to remember the size at free time, as real
        // general allocators do; rounded to an even block so frames
        // stay two-word aligned.
        let need = (words + 2) & !1;
        for i in 0..self.free.len() {
            self.charged_refs += 2; // visit: read size + next
            let (addr, size) = self.free[i];
            if size >= need {
                if size == need {
                    self.free.remove(i);
                } else {
                    self.free[i] = (addr + need, size - need);
                }
                // Write header, update the list node.
                self.charged_refs += 3;
                self.allocs += 1;
                return Ok(WordAddr(addr + 1));
            }
        }
        if self.emergency && self.reserve.1 >= need {
            let (addr, left) = self.reserve;
            self.reserve = (addr + need, left - need);
            self.charged_refs += 3;
            self.allocs += 1;
            return Ok(WordAddr(addr + 1));
        }
        Err(FrameError::OutOfMemory)
    }

    /// Frees the block at `frame` (allocated by [`GeneralHeap::alloc`])
    /// of `words` words, coalescing with neighbours.
    ///
    /// # Errors
    ///
    /// [`FrameError::InvalidFrame`] if the block overlaps the free list
    /// (double free).
    pub fn free(&mut self, frame: WordAddr, words: u32) -> Result<(), FrameError> {
        let addr = frame.0 - 1; // header word
        let size = (words + 2) & !1;
        self.charged_refs += 1; // read header
        let pos = self.free.partition_point(|&(a, _)| a < addr);
        self.charged_refs += 2 * pos.min(self.free.len()) as u64; // walk to position
                                                                  // Overlap checks (double free / bad pointer).
        if pos > 0 {
            let (pa, ps) = self.free[pos - 1];
            if pa + ps > addr {
                return Err(FrameError::InvalidFrame(frame));
            }
        }
        if pos < self.free.len() && addr + size > self.free[pos].0 {
            return Err(FrameError::InvalidFrame(frame));
        }
        self.free.insert(pos, (addr, size));
        self.charged_refs += 3; // link in
                                // Coalesce with successor then predecessor.
        if pos + 1 < self.free.len() {
            let (a, s) = self.free[pos];
            let (na, ns) = self.free[pos + 1];
            if a + s == na {
                self.free[pos] = (a, s + ns);
                self.free.remove(pos + 1);
                self.charged_refs += 2;
            }
        }
        if pos > 0 {
            let (pa, ps) = self.free[pos - 1];
            let (a, s) = self.free[pos];
            if pa + ps == a {
                self.free[pos - 1] = (pa, ps + s);
                self.free.remove(pos);
                self.charged_refs += 2;
            }
        }
        self.frees += 1;
        Ok(())
    }

    /// Number of blocks on the free list (fragmentation indicator).
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }
}

/// The strictly LIFO allocator conventional call architectures imply:
/// a bump pointer per contiguous stack.
///
/// Allocation and deallocation are free in memory references — that is
/// exactly why the paper wants the frame heap to be "nearly as fast as
/// stack allocation" — but only the **top** frame can be freed, so
/// coroutines, retained frames and multiple processes do not fit.
///
/// ```
/// use fpc_frames::{FrameError, StackAllocator};
///
/// let mut s = StackAllocator::new(0x100, 0x1000);
/// let a = s.alloc(10)?;
/// let b = s.alloc(20)?;
/// assert_eq!(s.free(a), Err(FrameError::NonLifoFree(a))); // not top
/// s.free(b)?;
/// s.free(a)?;
/// # Ok::<(), FrameError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StackAllocator {
    base: u32,
    limit: u32,
    /// Live frames as (addr, words), in stack order.
    frames: Vec<(u32, u32)>,
    sp: u32,
    peak: u32,
}

impl StackAllocator {
    /// Creates a stack growing upward from `base` with `words` capacity.
    pub fn new(base: u32, words: u32) -> Self {
        StackAllocator {
            base,
            limit: base + words,
            frames: Vec::new(),
            sp: base,
            peak: base,
        }
    }

    /// Pushes a frame of `words` words.
    ///
    /// # Errors
    ///
    /// [`FrameError::OutOfMemory`] past the reserved limit — the
    /// paper's point that "each coroutine or process needs a contiguous
    /// piece of storage large enough to hold the largest set of frames
    /// it will ever have".
    pub fn alloc(&mut self, words: u32) -> Result<WordAddr, FrameError> {
        if self.sp + words > self.limit {
            return Err(FrameError::OutOfMemory);
        }
        let addr = self.sp;
        self.frames.push((addr, words));
        self.sp += words;
        self.peak = self.peak.max(self.sp);
        Ok(WordAddr(addr))
    }

    /// Pops a frame; it must be the top one.
    ///
    /// # Errors
    ///
    /// [`FrameError::NonLifoFree`] if `frame` is live but not on top,
    /// [`FrameError::InvalidFrame`] if it is not live at all.
    pub fn free(&mut self, frame: WordAddr) -> Result<(), FrameError> {
        match self.frames.last() {
            Some(&(addr, words)) if addr == frame.0 => {
                self.frames.pop();
                self.sp = addr;
                let _ = words;
                Ok(())
            }
            _ if self.frames.iter().any(|&(a, _)| a == frame.0) => {
                Err(FrameError::NonLifoFree(frame))
            }
            _ => Err(FrameError::InvalidFrame(frame)),
        }
    }

    /// High-water mark in words — the contiguous reservation this
    /// stack would need.
    pub fn peak_words(&self) -> u32 {
        self.peak - self.base
    }

    /// Current depth in frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn general_heap_allocates_and_reuses() {
        let mut h = GeneralHeap::new(0x100, 0x1000);
        let a = h.alloc(10).unwrap();
        let b = h.alloc(20).unwrap();
        assert_ne!(a, b);
        h.free(a, 10).unwrap();
        let c = h.alloc(10).unwrap();
        assert_eq!(a, c, "first fit reuses the freed block");
    }

    #[test]
    fn general_heap_coalesces() {
        let mut h = GeneralHeap::new(0x100, 0x1000);
        let a = h.alloc(10).unwrap();
        let b = h.alloc(10).unwrap();
        let c = h.alloc(10).unwrap();
        h.free(a, 10).unwrap();
        h.free(c, 10).unwrap();
        // [a] plus [c merged with the tail]: c was the last allocation,
        // so it is adjacent to the remaining free tail.
        assert_eq!(h.free_blocks(), 2);
        h.free(b, 10).unwrap();
        assert_eq!(h.free_blocks(), 1, "all merged back into one block");
    }

    #[test]
    fn general_heap_double_free_detected() {
        let mut h = GeneralHeap::new(0x100, 0x1000);
        let a = h.alloc(10).unwrap();
        h.free(a, 10).unwrap();
        assert!(matches!(h.free(a, 10), Err(FrameError::InvalidFrame(_))));
    }

    #[test]
    fn general_heap_charges_more_when_fragmented() {
        let mut h = GeneralHeap::new(0x100, 0x4000);
        let frames: Vec<_> = (0..64).map(|_| h.alloc(16).unwrap()).collect();
        // Free every other block: fragmented list.
        for f in frames.iter().step_by(2) {
            h.free(*f, 16).unwrap();
        }
        let before = h.charged_refs();
        // A larger request must walk past the 16-word holes.
        let _ = h.alloc(64).unwrap();
        let walk_cost = h.charged_refs() - before;
        assert!(walk_cost > 3 + 4, "walked {walk_cost} refs");
    }

    #[test]
    fn general_heap_out_of_memory() {
        let mut h = GeneralHeap::new(0x100, 16);
        assert!(h.alloc(100).is_err());
    }

    #[test]
    fn general_heap_reserve_withheld_until_donated() {
        let mut h = GeneralHeap::with_reserve(0x100, 0x100, 0x80);
        assert_eq!(h.reserve_words(), 0x80);
        let mut live = Vec::new();
        while let Ok(f) = h.alloc(14) {
            live.push(f);
        }
        let held_back = live.len();
        assert!(held_back > 0);
        assert_eq!(h.donate(0x80), 0x80);
        assert_eq!(h.reserve_words(), 0);
        while let Ok(f) = h.alloc(14) {
            live.push(f);
        }
        assert!(live.len() > held_back, "donation freed more capacity");
        // All frames stay two-word aligned across the boundary.
        for f in &live {
            assert_eq!(f.0 % 2, 0, "misaligned frame {f:?}");
        }
    }

    #[test]
    fn general_heap_emergency_borrows_from_reserve() {
        let mut h = GeneralHeap::with_reserve(0x100, 0x100, 0x40);
        while h.alloc(14).is_ok() {}
        assert!(h.alloc(14).is_err());
        h.set_emergency(true);
        let f = h.alloc(14).unwrap();
        assert_eq!(f.0 % 2, 0);
        h.set_emergency(false);
        assert!(h.alloc(14).is_err());
        // Emergency consumption shrinks what remains donatable.
        assert!(h.reserve_words() < 0x40);
    }

    #[test]
    fn stack_allocator_is_strictly_lifo() {
        let mut s = StackAllocator::new(0, 100);
        let a = s.alloc(10).unwrap();
        let b = s.alloc(10).unwrap();
        assert_eq!(s.free(a), Err(FrameError::NonLifoFree(a)));
        s.free(b).unwrap();
        s.free(a).unwrap();
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn stack_allocator_tracks_peak_reservation() {
        let mut s = StackAllocator::new(0, 1000);
        let mut frames = Vec::new();
        for _ in 0..10 {
            frames.push(s.alloc(37).unwrap());
        }
        for f in frames.into_iter().rev() {
            s.free(f).unwrap();
        }
        assert_eq!(s.peak_words(), 370);
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn stack_allocator_overflow() {
        let mut s = StackAllocator::new(0, 10);
        assert!(s.alloc(11).is_err());
    }

    #[test]
    fn stack_free_of_unknown_frame() {
        let mut s = StackAllocator::new(0, 10);
        assert_eq!(
            s.free(WordAddr(5)),
            Err(FrameError::InvalidFrame(WordAddr(5)))
        );
    }
}
