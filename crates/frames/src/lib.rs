#![warn(missing_docs)]
//! The frame-heap allocator of *Fast Procedure Calls* §5.3.
//!
//! "A specialized heap is used to make the allocation nearly as fast as
//! stack allocation … A procedure specifies its frame size in its first
//! byte by a frame size index into an array of free lists called the
//! allocation vector AV. … Only three memory references are required to
//! allocate a frame …, and four to free it. If the free list is empty
//! there is a trap to a software allocator which creates more frames of
//! the desired size."
//!
//! The crate provides:
//!
//! * [`SizeClasses`] — the geometric frame-size ladder (the choice is
//!   "private to the compiler … and the software allocator");
//! * [`FrameHeap`] — the AV free-list allocator operating on simulated
//!   [`Memory`](fpc_mem::Memory), with exact reference counts and
//!   fragmentation accounting (experiment E3);
//! * [`GeneralHeap`] — a first-fit baseline with a modelled reference
//!   cost, standing in for a conventional Algol-style runtime
//!   allocator;
//! * [`StackAllocator`] — the strictly LIFO baseline that conventional
//!   architectures force, which cannot serve coroutines or multiple
//!   processes (it reports [`FrameError::NonLifoFree`] instead).
//!
//! # Example
//!
//! ```
//! use fpc_frames::{FrameHeap, SizeClasses};
//! use fpc_mem::{Memory, WordAddr};
//!
//! let mut mem = Memory::new(0x4000);
//! let mut heap = FrameHeap::new(&mut mem, WordAddr(0x10), SizeClasses::mesa(), 0x100..0x4000)?;
//! let f = heap.alloc(&mut mem, 10)?;
//! assert!(!f.is_nil());
//! heap.free(&mut mem, f)?;
//! # Ok::<(), fpc_frames::FrameError>(())
//! ```

mod baseline;
mod classes;
mod heap;

pub use baseline::{GeneralHeap, StackAllocator};
pub use classes::SizeClasses;
pub use heap::{FrameError, FrameHeap, HeapStats};
