//! The AV free-list frame heap (§5.3, figure 2).

use std::fmt;
use std::ops::Range;

use fpc_mem::{Memory, WordAddr};
use fpc_stats::Histogram;

use crate::classes::SizeClasses;

/// Errors from the frame allocators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The request exceeds the largest size class; a real system would
    /// divert such frames to the general allocator.
    OversizeRequest {
        /// Requested frame size in words.
        words: u32,
    },
    /// The frame region is exhausted.
    OutOfMemory,
    /// The address freed was not a live frame of this heap.
    InvalidFrame(WordAddr),
    /// A strictly LIFO allocator was asked to free a frame that is not
    /// on top — the restriction that makes conventional stack schemes
    /// "unsuitable for coroutines, retained frames, and multiple
    /// processes" (§1).
    NonLifoFree(WordAddr),
    /// Heap metadata read back from simulated memory (a free-list link
    /// or a hidden size word) was not a valid value: the guest wrote
    /// over it. Reported as a typed error rather than a host panic.
    CorruptHeap(WordAddr),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::OversizeRequest { words } => {
                write!(f, "frame of {words} words exceeds the largest size class")
            }
            FrameError::OutOfMemory => write!(f, "frame region exhausted"),
            FrameError::InvalidFrame(a) => write!(f, "free of non-live frame at {a}"),
            FrameError::NonLifoFree(a) => {
                write!(f, "LIFO allocator cannot free non-top frame at {a}")
            }
            FrameError::CorruptHeap(a) => {
                write!(f, "corrupt frame-heap metadata at {a}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Counters kept by [`FrameHeap`].
#[derive(Debug, Default, Clone)]
pub struct HeapStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Traps to the software allocator (empty free list).
    pub traps: u64,
    /// Words carved from the region by the software allocator,
    /// including the hidden size-index words.
    pub carved_words: u64,
    /// Sum of requested frame sizes (words).
    pub requested_words: u64,
    /// Sum of granted class sizes (words).
    pub granted_words: u64,
    /// Live frames now.
    pub live: u64,
    /// High-water mark of live frames.
    pub peak_live: u64,
    /// Memory references on the fast path (3 per alloc, 4 per free).
    pub fast_refs: u64,
    /// Memory references spent inside software-allocator traps.
    pub slow_refs: u64,
    /// Reserve words released to the carve region by [`FrameHeap::donate`].
    pub donated_words: u64,
    /// Distribution of requested sizes in words.
    pub request_sizes: Histogram,
}

impl HeapStats {
    /// Internal fragmentation so far: `1 − requested/granted`.
    ///
    /// The paper claims "this scheme wastes only 10% of the space in
    /// fragmentation" for the Mesa ladder.
    pub fn fragmentation(&self) -> f64 {
        if self.granted_words == 0 {
            0.0
        } else {
            1.0 - self.requested_words as f64 / self.granted_words as f64
        }
    }

    /// Mean fast-path references per operation.
    pub fn refs_per_op(&self) -> f64 {
        let ops = self.allocs + self.frees;
        if ops == 0 {
            0.0
        } else {
            self.fast_refs as f64 / ops as f64
        }
    }
}

/// How many frames the software allocator carves per trap.
const REPLENISH_COUNT: u32 = 4;

/// The allocation-vector frame heap.
///
/// The AV lives in simulated memory at `av_base`, one head word per
/// size class; free frames are chained through their first word; each
/// frame block carries one hidden word (at `frame − 1`) holding its
/// size-class index "so that the size need not be specified when it is
/// freed" (§5.3).
///
/// All architectural accesses go through [`Memory`], so the paper's
/// reference counts are measurable rather than asserted — and the unit
/// tests below assert them anyway: **3** references per allocation,
/// **4** per free.
#[derive(Debug, Clone)]
pub struct FrameHeap {
    av_base: WordAddr,
    classes: SizeClasses,
    carve: u32,
    /// Normal carve limit. At most `region_end`; the gap between the
    /// two is the reserve a frame-fault handler can [`FrameHeap::donate`].
    soft_end: u32,
    region_end: u32,
    /// While set, `replenish` may carve past `soft_end` up to
    /// `region_end` — used by the machine to guarantee the fault
    /// handler's own frame can be allocated.
    emergency: bool,
    /// Liveness per frame address, indexed directly (frames live in
    /// the bounded simulated memory, and alloc/free sit on the call
    /// path, so this is a flat vector rather than a hash set).
    live_set: Vec<bool>,
    stats: HeapStats,
}

impl FrameHeap {
    /// Creates a heap: zeroes the AV heads and prepares to carve frames
    /// from `region`.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::OutOfMemory`] if the region cannot hold
    /// even one smallest frame.
    ///
    /// # Panics
    ///
    /// Panics if the AV overlaps the region or either is out of memory
    /// bounds — those are configuration bugs, not runtime conditions.
    pub fn new(
        mem: &mut Memory,
        av_base: WordAddr,
        classes: SizeClasses,
        region: Range<u32>,
    ) -> Result<Self, FrameError> {
        Self::with_reserve(mem, av_base, classes, region, 0)
    }

    /// Like [`FrameHeap::new`] but holds back the last `reserve` words
    /// of the region: normal replenishing stops short of them, and only
    /// [`FrameHeap::donate`] (the fault handler's privilege) or
    /// emergency mode can reach them.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::OutOfMemory`] if the region minus the
    /// reserve cannot hold even one smallest frame.
    ///
    /// # Panics
    ///
    /// Panics if the AV overlaps the region or either is out of memory
    /// bounds — those are configuration bugs, not runtime conditions.
    pub fn with_reserve(
        mem: &mut Memory,
        av_base: WordAddr,
        classes: SizeClasses,
        region: Range<u32>,
        reserve: u32,
    ) -> Result<Self, FrameError> {
        let av_end = av_base.0 + classes.len() as u32;
        assert!(av_end <= mem.size(), "AV outside memory");
        assert!(region.end <= mem.size(), "frame region outside memory");
        assert!(
            av_end <= region.start || av_base.0 >= region.end,
            "AV overlaps the frame region"
        );
        for i in 0..classes.len() as u32 {
            mem.poke(av_base.offset(i), 0);
        }
        // First block starts at an odd address so the frame proper
        // (block + 1) is two-word aligned; blocks are even-sized, so
        // parity is preserved thereafter.
        let carve = region.start | 1;
        let soft_end = region.end.saturating_sub(reserve).max(region.start);
        if carve + 1 + classes.size_of(0) > soft_end {
            return Err(FrameError::OutOfMemory);
        }
        Ok(FrameHeap {
            av_base,
            classes,
            carve,
            soft_end,
            region_end: region.end,
            emergency: false,
            live_set: Vec::new(),
            stats: HeapStats::default(),
        })
    }

    /// Words still held in reserve (donatable).
    pub fn reserve_words(&self) -> u32 {
        self.region_end - self.soft_end
    }

    /// Releases up to `words` reserve words to the normal carve region
    /// (the §5.3 replenisher's donation); returns the count granted.
    pub fn donate(&mut self, words: u32) -> u32 {
        let granted = words.min(self.reserve_words());
        self.soft_end += granted;
        self.stats.donated_words += granted as u64;
        granted
    }

    /// Toggles emergency mode: while on, replenishing may carve past
    /// the soft end into the reserve. The machine sets this only while
    /// dispatching a fault handler, so handler frames cannot themselves
    /// frame-fault until the true region end.
    pub fn set_emergency(&mut self, on: bool) {
        self.emergency = on;
    }

    /// The size-class ladder in use.
    pub fn classes(&self) -> &SizeClasses {
        &self.classes
    }

    /// Allocation counters.
    pub fn stats(&self) -> &HeapStats {
        &self.stats
    }

    /// The size-class index for a frame of `words` words, as the
    /// compiler would burn into the procedure header.
    ///
    /// # Errors
    ///
    /// [`FrameError::OversizeRequest`] beyond the largest class.
    pub fn fsi_for(&self, words: u32) -> Result<u8, FrameError> {
        self.classes
            .fsi_for(words)
            .ok_or(FrameError::OversizeRequest { words })
    }

    /// Allocates a frame of at least `words` words.
    ///
    /// # Errors
    ///
    /// [`FrameError::OversizeRequest`] or [`FrameError::OutOfMemory`].
    pub fn alloc(&mut self, mem: &mut Memory, words: u32) -> Result<WordAddr, FrameError> {
        let fsi = self.fsi_for(words)?;
        let frame = self.alloc_fsi(mem, fsi)?;
        // alloc_fsi accounted the granted size; fix up the requested.
        self.stats.requested_words += words as u64;
        self.stats.request_sizes.record(words as u64);
        Ok(frame)
    }

    /// Allocates a frame of size class `fsi` — the operation performed
    /// by the XFER microcode, which reads the fsi straight from the
    /// procedure header.
    ///
    /// Fast path: exactly three memory references (fetch list head from
    /// AV, fetch next pointer from the first node, store it into the
    /// list head).
    ///
    /// # Errors
    ///
    /// [`FrameError::OutOfMemory`] if the region cannot be replenished,
    /// [`FrameError::OversizeRequest`] for an fsi beyond the ladder,
    /// [`FrameError::CorruptHeap`] if a free-list head read back from
    /// simulated memory points outside memory or at a live frame (the
    /// guest scribbled over the AV or a link word).
    pub fn alloc_fsi(&mut self, mem: &mut Memory, fsi: u8) -> Result<WordAddr, FrameError> {
        if fsi as usize >= self.classes.len() {
            return Err(FrameError::OversizeRequest {
                words: self.classes.max_words() + 1,
            });
        }
        let head_slot = self.av_base.offset(fsi as u32);
        let mut head = mem.read(head_slot); // ref 1
        self.stats.fast_refs += 1;
        if head == 0 {
            self.replenish(mem, fsi)?;
            head = mem.read(head_slot); // still part of the trap cost
            self.stats.slow_refs += 1;
        }
        let frame = WordAddr(head as u32);
        if frame.0 >= mem.size() || self.is_live(frame) {
            return Err(FrameError::CorruptHeap(head_slot));
        }
        let next = mem.read(frame); // ref 2
        mem.write(head_slot, next); // ref 3
        self.stats.fast_refs += 2;

        self.stats.allocs += 1;
        self.stats.granted_words += self.classes.size_of(fsi) as u64;
        self.stats.live += 1;
        self.stats.peak_live = self.stats.peak_live.max(self.stats.live);
        let i = frame.0 as usize;
        if i >= self.live_set.len() {
            self.live_set.resize(i + 1, false);
        }
        self.live_set[i] = true;
        Ok(frame)
    }

    /// Frees a frame. Exactly four memory references: fetch the hidden
    /// size-index word, fetch the AV head, link the frame, store the
    /// new head.
    ///
    /// # Errors
    ///
    /// [`FrameError::InvalidFrame`] if `frame` is not a live frame of
    /// this heap, [`FrameError::CorruptHeap`] if its hidden size word
    /// was overwritten with a value outside the ladder.
    pub fn free(&mut self, mem: &mut Memory, frame: WordAddr) -> Result<(), FrameError> {
        if !self.is_live(frame) {
            return Err(FrameError::InvalidFrame(frame));
        }
        let fsi = mem.read(WordAddr(frame.0 - 1)); // ref 1
        if fsi as usize >= self.classes.len() {
            return Err(FrameError::CorruptHeap(WordAddr(frame.0 - 1)));
        }
        self.live_set[frame.0 as usize] = false;
        let head_slot = self.av_base.offset(fsi as u32);
        let head = mem.read(head_slot); // ref 2
        mem.write(frame, head); // ref 3
        mem.write(head_slot, frame.0 as u16); // ref 4
        self.stats.fast_refs += 4;
        self.stats.frees += 1;
        self.stats.live -= 1;
        Ok(())
    }

    /// Whether `frame` is currently live.
    pub fn is_live(&self, frame: WordAddr) -> bool {
        self.live_set
            .get(frame.0 as usize)
            .copied()
            .unwrap_or(false)
    }

    /// The software allocator: carve fresh blocks of class `fsi` from
    /// the region and push them on the free list. This is the trap path
    /// whose cost the fast path avoids.
    fn replenish(&mut self, mem: &mut Memory, fsi: u8) -> Result<(), FrameError> {
        self.stats.traps += 1;
        let size = self.classes.size_of(fsi);
        let block = 1 + size; // hidden fsi word + frame
        let before = mem.stats();
        let end = if self.emergency {
            self.region_end
        } else {
            self.soft_end
        };
        let mut carved = 0;
        for _ in 0..REPLENISH_COUNT {
            if self.carve + block > end {
                break;
            }
            let frame = WordAddr(self.carve + 1);
            debug_assert_eq!(frame.0 % 2, 0, "frame misaligned");
            mem.write(WordAddr(self.carve), fsi as u16); // hidden size word
            let head_slot = self.av_base.offset(fsi as u32);
            let head = mem.read(head_slot);
            mem.write(frame, head);
            mem.write(head_slot, frame.0 as u16);
            self.carve += block;
            carved += 1;
        }
        self.stats.carved_words += carved as u64 * block as u64;
        self.stats.slow_refs += mem.stats().since(before).total();
        if carved == 0 {
            Err(FrameError::OutOfMemory)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Memory, FrameHeap) {
        let mut mem = Memory::new(0x8000);
        let heap =
            FrameHeap::new(&mut mem, WordAddr(0x10), SizeClasses::mesa(), 0x100..0x8000).unwrap();
        (mem, heap)
    }

    #[test]
    fn alloc_returns_aligned_nonnil_frames() {
        let (mut mem, mut heap) = setup();
        let f = heap.alloc(&mut mem, 10).unwrap();
        assert!(!f.is_nil());
        assert_eq!(f.0 % 2, 0);
        assert!(heap.is_live(f));
    }

    #[test]
    fn fast_path_costs_exactly_three_and_four_references() {
        let (mut mem, mut heap) = setup();
        // Warm the free list: allocate and free once so a node exists.
        let f = heap.alloc(&mut mem, 10).unwrap();
        heap.free(&mut mem, f).unwrap();

        let before = mem.stats();
        let f = heap.alloc(&mut mem, 10).unwrap();
        assert_eq!(mem.stats().since(before).total(), 3, "alloc fast path");

        let before = mem.stats();
        heap.free(&mut mem, f).unwrap();
        assert_eq!(mem.stats().since(before).total(), 4, "free fast path");
    }

    #[test]
    fn freed_frame_is_reused() {
        let (mut mem, mut heap) = setup();
        let f1 = heap.alloc(&mut mem, 10).unwrap();
        heap.free(&mut mem, f1).unwrap();
        let f2 = heap.alloc(&mut mem, 10).unwrap();
        assert_eq!(f1, f2, "LIFO reuse of the per-size free list");
    }

    #[test]
    fn different_classes_use_different_lists() {
        let (mut mem, mut heap) = setup();
        let small = heap.alloc(&mut mem, 5).unwrap();
        let big = heap.alloc(&mut mem, 200).unwrap();
        heap.free(&mut mem, small).unwrap();
        // Freeing the small frame must not satisfy a big request.
        let big2 = heap.alloc(&mut mem, 200).unwrap();
        assert_ne!(big2, small);
        assert_ne!(big2, big);
    }

    #[test]
    fn non_lifo_free_order_is_fine() {
        // The whole point (§5.3): "it does not depend on a last-in
        // first-out discipline".
        let (mut mem, mut heap) = setup();
        let frames: Vec<_> = (0..16).map(|_| heap.alloc(&mut mem, 12).unwrap()).collect();
        for f in frames.iter().step_by(2) {
            heap.free(&mut mem, *f).unwrap();
        }
        for f in frames.iter().skip(1).step_by(2) {
            heap.free(&mut mem, *f).unwrap();
        }
        assert_eq!(heap.stats().live, 0);
    }

    #[test]
    fn double_free_detected() {
        let (mut mem, mut heap) = setup();
        let f = heap.alloc(&mut mem, 10).unwrap();
        heap.free(&mut mem, f).unwrap();
        assert_eq!(heap.free(&mut mem, f), Err(FrameError::InvalidFrame(f)));
    }

    #[test]
    fn free_of_garbage_detected() {
        let (mut mem, mut heap) = setup();
        assert!(matches!(
            heap.free(&mut mem, WordAddr(0x200)),
            Err(FrameError::InvalidFrame(_))
        ));
    }

    #[test]
    fn oversize_request_rejected() {
        let (mut mem, mut heap) = setup();
        let too_big = heap.classes().max_words() + 1;
        assert_eq!(
            heap.alloc(&mut mem, too_big),
            Err(FrameError::OversizeRequest { words: too_big })
        );
    }

    #[test]
    fn region_exhaustion_reported() {
        let mut mem = Memory::new(0x400);
        let mut heap =
            FrameHeap::new(&mut mem, WordAddr(0x10), SizeClasses::mesa(), 0x100..0x180).unwrap();
        let mut live = Vec::new();
        let err = loop {
            match heap.alloc(&mut mem, 9) {
                Ok(f) => live.push(f),
                Err(e) => break e,
            }
        };
        assert_eq!(err, FrameError::OutOfMemory);
        assert!(!live.is_empty());
    }

    #[test]
    fn fragmentation_accounting() {
        let (mut mem, mut heap) = setup();
        // Request sizes that sit mid-class.
        for words in [5u32, 10, 15, 20, 40, 80] {
            let _ = heap.alloc(&mut mem, words).unwrap();
        }
        let frag = heap.stats().fragmentation();
        assert!(frag > 0.0 && frag < 0.5, "fragmentation {frag}");
        assert_eq!(heap.stats().allocs, 6);
        assert_eq!(heap.stats().peak_live, 6);
    }

    #[test]
    fn traps_counted_and_amortised() {
        let (mut mem, mut heap) = setup();
        let mut frames = Vec::new();
        for _ in 0..32 {
            frames.push(heap.alloc(&mut mem, 9).unwrap());
        }
        // 32 allocations of one class with REPLENISH_COUNT=4: 8 traps.
        assert_eq!(heap.stats().traps, 8);
        assert!(heap.stats().slow_refs > 0);
        // Fast path refs are exactly 3 per alloc.
        assert_eq!(heap.stats().fast_refs, 32 * 3);
    }

    #[test]
    fn hidden_size_word_survives_reuse_cycles() {
        let (mut mem, mut heap) = setup();
        let f = heap.alloc(&mut mem, 9).unwrap();
        let fsi = mem.peek(WordAddr(f.0 - 1));
        heap.free(&mut mem, f).unwrap();
        let f2 = heap.alloc(&mut mem, 9).unwrap();
        assert_eq!(f, f2);
        assert_eq!(mem.peek(WordAddr(f2.0 - 1)), fsi);
    }

    #[test]
    fn reserve_is_withheld_until_donated() {
        let mut mem = Memory::new(0x400);
        let mut heap = FrameHeap::with_reserve(
            &mut mem,
            WordAddr(0x10),
            SizeClasses::mesa(),
            0x100..0x200,
            0x80,
        )
        .unwrap();
        assert_eq!(heap.reserve_words(), 0x80);
        let mut live = Vec::new();
        let err = loop {
            match heap.alloc(&mut mem, 9) {
                Ok(f) => live.push(f),
                Err(e) => break e,
            }
        };
        assert_eq!(err, FrameError::OutOfMemory);
        let held_back = live.len();
        // Donating the reserve lets allocation continue.
        assert_eq!(heap.donate(0x80), 0x80);
        assert_eq!(heap.reserve_words(), 0);
        assert!(heap.alloc(&mut mem, 9).is_ok());
        // A second donation grants nothing.
        assert_eq!(heap.donate(16), 0);
        // And the reserve roughly doubles capacity here.
        while let Ok(f) = heap.alloc(&mut mem, 9) {
            live.push(f);
        }
        assert!(live.len() > held_back);
        assert_eq!(heap.stats().donated_words, 0x80);
    }

    #[test]
    fn emergency_mode_carves_past_the_soft_end() {
        let mut mem = Memory::new(0x400);
        let mut heap = FrameHeap::with_reserve(
            &mut mem,
            WordAddr(0x10),
            SizeClasses::mesa(),
            0x100..0x200,
            0x80,
        )
        .unwrap();
        while heap.alloc(&mut mem, 9).is_ok() {}
        assert_eq!(heap.alloc(&mut mem, 9), Err(FrameError::OutOfMemory));
        heap.set_emergency(true);
        assert!(heap.alloc(&mut mem, 9).is_ok());
        heap.set_emergency(false);
        // The soft end is unchanged: emergency carving borrows from the
        // reserve without re-drawing the donation boundary.
        assert_eq!(heap.reserve_words(), 0x80);
    }

    #[test]
    fn scribbled_fsi_word_is_a_typed_error() {
        let (mut mem, mut heap) = setup();
        let f = heap.alloc(&mut mem, 10).unwrap();
        mem.poke(WordAddr(f.0 - 1), 0xBEEF); // corrupt the hidden fsi
        assert_eq!(
            heap.free(&mut mem, f),
            Err(FrameError::CorruptHeap(WordAddr(f.0 - 1)))
        );
        // The frame stays live: the error is reported, not masked.
        assert!(heap.is_live(f));
    }

    #[test]
    fn scribbled_free_list_head_is_a_typed_error() {
        let (mut mem, mut heap) = setup();
        let f = heap.alloc(&mut mem, 10).unwrap();
        heap.free(&mut mem, f).unwrap();
        // Point the AV head at a live frame of another class.
        let live = heap.alloc(&mut mem, 200).unwrap();
        let fsi = heap.fsi_for(10).unwrap();
        mem.poke(WordAddr(0x10 + fsi as u32), live.0 as u16);
        assert!(matches!(
            heap.alloc(&mut mem, 10),
            Err(FrameError::CorruptHeap(_))
        ));
    }

    #[test]
    fn oversize_fsi_is_a_typed_error() {
        let (mut mem, mut heap) = setup();
        assert!(matches!(
            heap.alloc_fsi(&mut mem, 0xFF),
            Err(FrameError::OversizeRequest { .. })
        ));
    }

    #[test]
    fn av_overlap_is_a_panic() {
        let mut mem = Memory::new(0x1000);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            FrameHeap::new(
                &mut mem,
                WordAddr(0x100),
                SizeClasses::mesa(),
                0x100..0x1000,
            )
        }));
        assert!(r.is_err());
    }
}
