#![warn(missing_docs)]
//! A tiny, dependency-free, seeded pseudo-random number generator for
//! the experiment corpus and the randomized tests.
//!
//! The container this workspace builds in has no crates.io access, so
//! the usual `rand` stack is unavailable; everything random in the
//! repository goes through this crate instead. Two classic generators
//! are provided:
//!
//! * [`SplitMix64`] — the 64-bit finalizer-based generator of Steele,
//!   Lea & Flood; one multiply-xorshift pipeline per output. Used for
//!   seeding and for places that need a `Copy` one-liner.
//! * [`Xoshiro256`] — xoshiro256\*\* by Blackman & Vigna, seeded from
//!   SplitMix64 as its authors recommend. The default generator.
//!
//! Both are fully deterministic functions of the seed, so every trace,
//! workload and test in the repository is reproducible bit-for-bit
//! across platforms. **These are not cryptographic generators.**
//!
//! The previous revision of this repository used `rand::StdRng`
//! (ChaCha12) for the synthetic traces; seeds produce different — but
//! statistically equivalent — event sequences now. Every consumer
//! asserts distributional properties, not literal sequences, so the
//! swap is behaviour-preserving at the level the experiments care
//! about.
//!
//! # Example
//!
//! ```
//! use fpc_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let coin = rng.gen_bool(0.5);
//! let byte = rng.gen_range_u32(0, 255);
//! assert!(byte <= 255);
//! let _ = coin;
//! // Same seed, same stream.
//! assert_eq!(Rng::seed_from_u64(7).next_u64(), Rng::seed_from_u64(7).next_u64());
//! ```

/// SplitMix64: a 64-bit generator with a single `u64` of state.
///
/// Passes BigCrush when used as a stream; its main role here is
/// expanding one seed word into the larger xoshiro state, but it is a
/// perfectly good standalone generator for small jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\*: the repository's default generator.
///
/// 256 bits of state, period 2²⁵⁶ − 1, excellent statistical quality
/// and a few nanoseconds per output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the full 256-bit state from one word via SplitMix64, as
    /// the xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The convenience generator used across the workspace: xoshiro256\*\*
/// plus the sampling helpers the corpus and tests need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    inner: Xoshiro256,
}

impl Rng {
    /// Creates a generator from a seed; same seed, same stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng {
            inner: Xoshiro256::seed_from_u64(seed),
        }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform `u32` in `[lo, hi]` (both inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn gen_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi - lo) as u64 + 1;
        // Multiply-shift range reduction (Lemire); the bias for spans
        // this small (≪ 2^64) is far below anything the statistical
        // assertions can see.
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as u32)
    }

    /// A uniform index in `[0, len)` for indexing a slice.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[inline]
    pub fn gen_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot sample an index from an empty slice");
        ((self.next_u64() as u128 * len as u128) >> 64) as usize
    }

    /// A uniform `i16` in `[lo, hi]` (both inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn gen_range_i16(&mut self, lo: i16, hi: i16) -> i16 {
        let span = (hi as i32 - lo as i32) as u32;
        (lo as i32 + self.gen_range_u32(0, span) as i32) as i16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference values from the public-domain splitmix64.c with
        // seed 1234567.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        let mut c = Xoshiro256::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_samples_stay_in_unit_interval_and_look_uniform() {
        let mut rng = Rng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(99);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn ranges_are_inclusive_and_cover() {
        let mut rng = Rng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range_u32(3, 12);
            assert!((3..=12).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range sampled");
        for _ in 0..1000 {
            let v = rng.gen_range_i16(-5, 5);
            assert!((-5..=5).contains(&v));
        }
        assert_eq!(rng.gen_range_u32(9, 9), 9);
    }

    #[test]
    fn indices_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(11);
        for len in [1usize, 2, 3, 64, 1000] {
            for _ in 0..200 {
                assert!(rng.gen_index(len) < len);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_index_rejected() {
        let _ = Rng::seed_from_u64(0).gen_index(0);
    }
}
