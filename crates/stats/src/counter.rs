//! A named monotonically increasing event counter.

use std::fmt;

/// A monotonically increasing event counter.
///
/// The simulator threads many of these through hot loops, so the type is
/// deliberately a thin wrapper over `u64` with convenience arithmetic.
///
/// ```
/// use fpc_stats::Counter;
///
/// let mut calls = Counter::new();
/// calls.incr();
/// calls.add(3);
/// assert_eq!(calls.get(), 4);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments the counter by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Resets the counter to zero, returning the previous value.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.0)
    }

    /// Difference since a previous snapshot.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `earlier` is ahead of `self`; counters
    /// are monotone, so that would indicate snapshots taken out of order.
    pub fn since(self, earlier: Counter) -> u64 {
        debug_assert!(self.0 >= earlier.0, "counter snapshots out of order");
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<Counter> for u64 {
    fn from(c: Counter) -> u64 {
        c.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(Counter::new().get(), 0);
        assert_eq!(Counter::default().get(), 0);
    }

    #[test]
    fn incr_and_add_accumulate() {
        let mut c = Counter::new();
        c.incr();
        c.incr();
        c.add(10);
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn take_resets() {
        let mut c = Counter::new();
        c.add(5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn since_computes_delta() {
        let mut c = Counter::new();
        c.add(3);
        let snap = c;
        c.add(4);
        assert_eq!(c.since(snap), 4);
    }

    #[test]
    fn display_renders_value() {
        let mut c = Counter::new();
        c.add(17);
        assert_eq!(c.to_string(), "17");
    }
}
