//! An exact histogram over `u64` samples.
//!
//! The experiments need exact distributional answers ("95% of frames are
//! smaller than 80 bytes", "two-thirds of instructions are one byte"), and
//! sample counts are modest, so this is a sorted-map histogram rather than
//! an approximate sketch.

use std::collections::BTreeMap;
use std::fmt;

/// An exact histogram of `u64` samples.
///
/// ```
/// use fpc_stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.record_n(1, 2); // two one-byte instructions
/// h.record(3);      // one three-byte instruction
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.min(), Some(1));
/// assert_eq!(h.max(), Some(3));
/// assert!((h.mean() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: BTreeMap<u64, u64>,
    count: u64,
    sum: u128,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample with the given value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples with the given value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.buckets.entry(value).or_insert(0) += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value, if any.
    pub fn min(&self) -> Option<u64> {
        self.buckets.keys().next().copied()
    }

    /// Largest recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        self.buckets.keys().next_back().copied()
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fraction of samples strictly below `threshold`, in `[0, 1]`.
    ///
    /// This is the paper's favourite statistic: "95% of all frames
    /// allocated are smaller than 80 bytes" is `fraction_below(80) >= 0.95`.
    pub fn fraction_below(&self, threshold: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let below: u64 = self
            .buckets
            .range(..threshold)
            .map(|(_, &n)| n)
            .sum();
        below as f64 / self.count as f64
    }

    /// Fraction of samples equal to `value`.
    pub fn fraction_at(&self, value: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        *self.buckets.get(&value).unwrap_or(&0) as f64 / self.count as f64
    }

    /// Smallest value `v` such that at least `q` (in `[0,1]`) of the
    /// samples are `<= v`. Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (&value, &n) in &self.buckets {
            seen += n;
            if seen >= target {
                return Some(value);
            }
        }
        self.max()
    }

    /// Iterates over `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&v, &n)| (v, n))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, n) in other.iter() {
            self.record_n(v, n);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "(empty histogram)");
        }
        writeln!(f, "n={} mean={:.2}", self.count, self.mean())?;
        for (v, n) in self.iter() {
            writeln!(f, "  {v:>8}: {n}")?;
        }
        Ok(())
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_statistics() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.fraction_below(100), 0.0);
        assert_eq!(h.to_string(), "(empty histogram)");
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = Histogram::new();
        h.record_n(5, 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn fraction_below_is_strict() {
        let h: Histogram = [10u64, 20, 30].into_iter().collect();
        assert_eq!(h.fraction_below(10), 0.0);
        assert!((h.fraction_below(21) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.fraction_below(31), 1.0);
    }

    #[test]
    fn quantiles_match_sorted_order() {
        let h: Histogram = [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10].into_iter().collect();
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(5));
        assert_eq!(h.quantile(0.95), Some(10));
        assert_eq!(h.quantile(1.0), Some(10));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_out_of_range() {
        let h: Histogram = [1u64].into_iter().collect();
        let _ = h.quantile(1.5);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a: Histogram = [1u64, 1, 2].into_iter().collect();
        let b: Histogram = [2u64, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.fraction_at(2), 0.4);
    }

    #[test]
    fn mean_tracks_sum() {
        let mut h = Histogram::new();
        h.record_n(4, 3);
        h.record(8);
        assert!((h.mean() - 5.0).abs() < 1e-12);
        assert_eq!(h.sum(), 20);
    }
}
