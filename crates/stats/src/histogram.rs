//! An exact histogram over `u64` samples.
//!
//! The experiments need exact distributional answers ("95% of frames are
//! smaller than 80 bytes", "two-thirds of instructions are one byte"),
//! and sample counts are modest, so this is an exact histogram rather
//! than an approximate sketch.
//!
//! Internally it is split by value: small values (the overwhelming
//! majority — cycle counts, frame sizes, instruction lengths) are
//! counted in a dense array indexed by value, anything larger spills to
//! a sorted map. `record` sits on the simulator's per-transfer path, so
//! the common case must be an array increment, not a tree walk.

use std::collections::BTreeMap;
use std::fmt;

/// Values below this are counted in the dense array; the rest go to the
/// spill map. Large enough for every per-event statistic the simulator
/// records (cycles, references, frame bytes).
const DENSE_LIMIT: u64 = 1024;

/// An exact histogram of `u64` samples.
///
/// ```
/// use fpc_stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.record_n(1, 2); // two one-byte instructions
/// h.record(3);      // one three-byte instruction
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.min(), Some(1));
/// assert_eq!(h.max(), Some(3));
/// assert!((h.mean() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Default, Clone)]
pub struct Histogram {
    /// `dense[v]` counts samples of value `v`; grown lazily, so the
    /// length carries no information beyond the largest small value
    /// ever recorded.
    dense: Vec<u64>,
    /// Counts for values `>= DENSE_LIMIT`.
    spill: BTreeMap<u64, u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample with the given value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples with the given value.
    ///
    /// Totals (`count`, `sum`) are derived at query time, not
    /// maintained here: recording must stay a bare array increment,
    /// because the simulator calls it on every transfer.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if value < DENSE_LIMIT {
            let i = value as usize;
            if i >= self.dense.len() {
                self.dense.resize(i + 1, 0);
            }
            self.dense[i] += n;
        } else if n > 0 {
            *self.spill.entry(value).or_insert(0) += n;
        }
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.dense.iter().sum::<u64>() + self.spill.values().sum::<u64>()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.iter().map(|(v, n)| v as u128 * n as u128).sum()
    }

    /// Smallest recorded value, if any.
    pub fn min(&self) -> Option<u64> {
        self.iter().next().map(|(v, _)| v)
    }

    /// Largest recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        self.spill
            .keys()
            .next_back()
            .copied()
            .or_else(|| self.dense.iter().rposition(|&n| n > 0).map(|i| i as u64))
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Fraction of samples strictly below `threshold`, in `[0, 1]`.
    ///
    /// This is the paper's favourite statistic: "95% of all frames
    /// allocated are smaller than 80 bytes" is `fraction_below(80) >= 0.95`.
    pub fn fraction_below(&self, threshold: u64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let cut = (threshold.min(DENSE_LIMIT) as usize).min(self.dense.len());
        let below: u64 = self.dense[..cut].iter().sum::<u64>()
            + self.spill.range(..threshold).map(|(_, &n)| n).sum::<u64>();
        below as f64 / count as f64
    }

    /// Fraction of samples equal to `value`.
    pub fn fraction_at(&self, value: u64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let at = if value < DENSE_LIMIT {
            self.dense.get(value as usize).copied().unwrap_or(0)
        } else {
            self.spill.get(&value).copied().unwrap_or(0)
        };
        at as f64 / count as f64
    }

    /// Smallest value `v` such that at least `q` (in `[0,1]`) of the
    /// samples are `<= v`. Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        let count = self.count();
        if count == 0 {
            return None;
        }
        let target = (q * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (value, n) in self.iter() {
            seen += n;
            if seen >= target {
                return Some(value);
            }
        }
        self.max()
    }

    /// Iterates over `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.dense
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(v, &n)| (v as u64, n))
            .chain(self.spill.iter().map(|(&v, &n)| (v, n)))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, n) in other.iter() {
            self.record_n(v, n);
        }
    }

    /// Number of samples recorded at exactly `value`.
    pub fn count_at(&self, value: u64) -> u64 {
        if value < DENSE_LIMIT {
            self.dense.get(value as usize).copied().unwrap_or(0)
        } else {
            self.spill.get(&value).copied().unwrap_or(0)
        }
    }

    /// The `k` most frequently recorded values as `(value, count)`
    /// pairs, heaviest first. Ties break toward the smaller value so
    /// the ranking is deterministic.
    ///
    /// This is the hotness query: when the histogram maps procedure
    /// identifiers to invocation counts, `top_k` is the set of bodies
    /// worth promoting to a faster execution tier.
    ///
    /// ```
    /// use fpc_stats::Histogram;
    ///
    /// let mut h = Histogram::new();
    /// h.record_n(7, 100);
    /// h.record_n(3, 250);
    /// h.record_n(9, 5);
    /// assert_eq!(h.top_k(2), vec![(3, 250), (7, 100)]);
    /// ```
    pub fn top_k(&self, k: usize) -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = self.iter().collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

/// Merges `parts` into one distribution and ranks it: the `k` heaviest
/// `(value, count)` pairs of the combined multiset, heaviest first.
///
/// Shards that each count hotness locally (one histogram per worker,
/// per phase, per machine) are ranked globally this way without the
/// caller mutating any of them.
pub fn merged_top_k<'a, I>(parts: I, k: usize) -> Vec<(u64, u64)>
where
    I: IntoIterator<Item = &'a Histogram>,
{
    let mut merged = Histogram::new();
    for part in parts {
        merged.merge(part);
    }
    merged.top_k(k)
}

/// The quantiles of the union of `parts`: for each `q` in `qs`, the
/// smallest value `v` such that at least `q` of the combined samples
/// are `<= v` (`None` for every entry when all parts are empty).
///
/// This is the merged-percentile query for sharded collection: workers
/// that each record latencies locally get one global p50/p95/p99
/// without any shard mutating — or even seeing — another's histogram.
/// Percentiles do not compose shard-by-shard (the p95 of per-shard
/// p95s is not the p95 of the union), so the merge has to happen on
/// the full distributions; exact histograms make that cheap.
pub fn merged_quantiles<'a, I>(parts: I, qs: &[f64]) -> Vec<Option<u64>>
where
    I: IntoIterator<Item = &'a Histogram>,
{
    let mut merged = Histogram::new();
    for part in parts {
        merged.merge(part);
    }
    qs.iter().map(|&q| merged.quantile(q)).collect()
}

/// Equality is over the recorded multiset — the dense array's trailing
/// zeros (an artifact of growth order) do not participate.
impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        self.iter().eq(other.iter())
    }
}

impl Eq for Histogram {}

/// Debug shows the logical `(value, count)` map, not the dense/spill
/// split, so representation details never leak into golden output.
impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        struct Buckets<'a>(&'a Histogram);
        impl fmt::Debug for Buckets<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_map().entries(self.0.iter()).finish()
            }
        }
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("buckets", &Buckets(self))
            .finish()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let count = self.count();
        if count == 0 {
            return write!(f, "(empty histogram)");
        }
        writeln!(f, "n={count} mean={:.2}", self.mean())?;
        for (v, n) in self.iter() {
            writeln!(f, "  {v:>8}: {n}")?;
        }
        Ok(())
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_statistics() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.fraction_below(100), 0.0);
        assert_eq!(h.to_string(), "(empty histogram)");
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = Histogram::new();
        h.record_n(5, 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn fraction_below_is_strict() {
        let h: Histogram = [10u64, 20, 30].into_iter().collect();
        assert_eq!(h.fraction_below(10), 0.0);
        assert!((h.fraction_below(21) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.fraction_below(31), 1.0);
    }

    #[test]
    fn quantiles_match_sorted_order() {
        let h: Histogram = [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10].into_iter().collect();
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(5));
        assert_eq!(h.quantile(0.95), Some(10));
        assert_eq!(h.quantile(1.0), Some(10));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_out_of_range() {
        let h: Histogram = [1u64].into_iter().collect();
        let _ = h.quantile(1.5);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a: Histogram = [1u64, 1, 2].into_iter().collect();
        let b: Histogram = [2u64, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.fraction_at(2), 0.4);
    }

    #[test]
    fn mean_tracks_sum() {
        let mut h = Histogram::new();
        h.record_n(4, 3);
        h.record(8);
        assert!((h.mean() - 5.0).abs() < 1e-12);
        assert_eq!(h.sum(), 20);
    }

    #[test]
    fn spill_values_join_the_distribution() {
        let mut h = Histogram::new();
        h.record(3);
        h.record_n(5_000, 2); // beyond the dense range
        h.record(70_000);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(70_000));
        assert_eq!(h.quantile(0.5), Some(5_000));
        assert!((h.fraction_below(5_000) - 0.25).abs() < 1e-12);
        assert!((h.fraction_below(5_001) - 0.75).abs() < 1e-12);
        assert_eq!(h.fraction_at(5_000), 0.5);
        assert_eq!(
            h.iter().collect::<Vec<_>>(),
            vec![(3, 1), (5_000, 2), (70_000, 1)]
        );
    }

    #[test]
    fn top_k_ranks_by_count_with_deterministic_ties() {
        let mut h = Histogram::new();
        h.record_n(10, 3);
        h.record_n(4, 7);
        h.record_n(2_000, 7); // spill value, tied with 4
        h.record_n(1, 1);
        assert_eq!(h.top_k(0), vec![]);
        assert_eq!(h.top_k(2), vec![(4, 7), (2_000, 7)]);
        assert_eq!(h.top_k(10), vec![(4, 7), (2_000, 7), (10, 3), (1, 1)]);
        assert_eq!(Histogram::new().top_k(3), vec![]);
    }

    #[test]
    fn count_at_covers_dense_and_spill() {
        let mut h = Histogram::new();
        h.record_n(9, 4);
        h.record_n(9_000, 2);
        assert_eq!(h.count_at(9), 4);
        assert_eq!(h.count_at(9_000), 2);
        assert_eq!(h.count_at(8), 0);
        assert_eq!(h.count_at(8_888), 0);
    }

    #[test]
    fn merged_quantiles_are_union_quantiles_not_quantiles_of_quantiles() {
        // Two skewed shards: per-shard p50s are 1 and 100; the union's
        // p50 is 1 (six of ten samples are 1). A shard-wise combine
        // would get this wrong, which is the point of the helper.
        let a: Histogram = [1u64, 1, 1, 1, 1].into_iter().collect();
        let b: Histogram = [1u64, 100, 100, 100, 200].into_iter().collect();
        assert_eq!(
            merged_quantiles([&a, &b], &[0.5, 0.95, 0.99, 1.0]),
            vec![Some(1), Some(200), Some(200), Some(200)]
        );
        assert_eq!(
            merged_quantiles(std::iter::empty::<&Histogram>(), &[0.5]),
            vec![None]
        );
        // Inputs untouched.
        assert_eq!(a.count(), 5);
        assert_eq!(b.count(), 5);
    }

    #[test]
    fn merged_top_k_ranks_the_union() {
        let a: Histogram = [1u64, 1, 2].into_iter().collect();
        let b: Histogram = [2u64, 2, 3].into_iter().collect();
        // union: 1→2, 2→3, 3→1
        assert_eq!(merged_top_k([&a, &b], 2), vec![(2, 3), (1, 2)]);
        assert_eq!(merged_top_k(std::iter::empty::<&Histogram>(), 2), vec![]);
        // inputs untouched
        assert_eq!(a.count(), 3);
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn equality_ignores_growth_order() {
        let mut a = Histogram::new();
        a.record(100); // grows dense past the other's length
        a.record(2);
        let mut b = Histogram::new();
        b.record(2);
        b.record(100);
        assert_eq!(a, b);
        let c: Histogram = [2u64].into_iter().collect();
        assert_ne!(a, c);
    }
}
