//! A small aligned-text table renderer for experiment output.
//!
//! Every `exp_*` binary prints its result as one of these, so the
//! paper-vs-measured comparisons in `EXPERIMENTS.md` can be regenerated
//! by re-running the harness and diffing the text.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Align {
    /// Left-aligned (default; labels).
    #[default]
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// An aligned plain-text table.
///
/// ```
/// use fpc_stats::{Align, Table};
///
/// let mut t = Table::new(&["workload", "calls"]);
/// t.align(1, Align::Right);
/// t.row(&["fib", "21891"]);
/// let text = t.to_string();
/// assert!(text.contains("fib"));
/// assert!(text.contains("21891"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            aligns: vec![Align::Left; header.len()],
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Sets the alignment of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn align(&mut self, col: usize, align: Align) -> &mut Self {
        self.aligns[col] = align;
        self
    }

    /// Right-aligns every column except the first. The common shape:
    /// a label column followed by numeric columns.
    pub fn numeric(&mut self) -> &mut Self {
        for a in self.aligns.iter_mut().skip(1) {
            *a = Align::Right;
        }
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row has a different arity than the header.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.header.len()
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the row has a different arity than the header.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                match self.aligns[i] {
                    Align::Left => write!(f, "{cell:<width$}", width = widths[i])?,
                    Align::Right => write!(f, "{cell:>width$}", width = widths[i])?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        write_row(f, &rule)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        let _ = ncols;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "n"]);
        t.numeric();
        t.row(&["a", "1"]);
        t.row(&["longer", "12345"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{s}");
        // Numeric column right-aligned: "1" ends where "12345" ends.
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_wrong_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn empty_table_prints_header_and_rule() {
        let t = Table::new(&["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        let s = t.to_string();
        assert!(s.starts_with('x'));
        assert!(s.contains('-'));
    }

    #[test]
    fn row_owned_accepts_strings() {
        let mut t = Table::new(&["k", "v"]);
        t.row_owned(vec!["calls".into(), format!("{}", 42)]);
        assert_eq!(t.len(), 1);
        assert!(t.to_string().contains("42"));
    }
}
