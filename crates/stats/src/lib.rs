#![warn(missing_docs)]
//! Measurement infrastructure for the *Fast Procedure Calls* reproduction.
//!
//! Every experiment in the paper reduces to counting things — memory
//! references, instruction bytes, transfer events, frame words — and
//! summarising them as rates, histograms and small tables. This crate
//! provides those primitives so that the simulator crates stay free of
//! formatting concerns.
//!
//! # Example
//!
//! ```
//! use fpc_stats::Histogram;
//!
//! let mut sizes = Histogram::new();
//! for s in [12u64, 20, 20, 44, 300] {
//!     sizes.record(s);
//! }
//! assert_eq!(sizes.count(), 5);
//! assert!(sizes.fraction_below(80) >= 0.8);
//! ```

mod counter;
mod histogram;
mod table;

pub use counter::Counter;
pub use histogram::{merged_quantiles, merged_top_k, Histogram};
pub use table::{Align, Table};

/// A ratio of two event counts, rendered as a percentage.
///
/// Guards against division by zero: an empty denominator yields `0.0`.
///
/// ```
/// assert_eq!(fpc_stats::percentage(1, 4), 25.0);
/// assert_eq!(fpc_stats::percentage(3, 0), 0.0);
/// ```
pub fn percentage(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        100.0 * numerator as f64 / denominator as f64
    }
}

/// Arithmetic mean of a slice, `0.0` when empty.
///
/// ```
/// assert_eq!(fpc_stats::mean(&[2.0, 4.0]), 3.0);
/// assert_eq!(fpc_stats::mean(&[]), 0.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean of a slice of positive values, `0.0` when empty.
///
/// Used when averaging ratios across workloads (cycles-per-call relative
/// to a jump, space expansion factors), where the arithmetic mean would
/// over-weight outliers.
///
/// ```
/// let g = fpc_stats::geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentage_basic() {
        assert_eq!(percentage(0, 10), 0.0);
        assert_eq!(percentage(10, 10), 100.0);
        assert!((percentage(1, 3) - 33.333).abs() < 0.01);
    }

    #[test]
    fn percentage_zero_denominator_is_zero() {
        assert_eq!(percentage(42, 0), 0.0);
    }

    #[test]
    fn mean_handles_empty_and_single() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[7.5]), 7.5);
    }

    #[test]
    fn geomean_of_identical_values_is_that_value() {
        let g = geomean(&[3.0, 3.0, 3.0]);
        assert!((g - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }
}
