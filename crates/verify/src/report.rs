//! Typed diagnostics and the verification report.

use std::fmt;

/// Why a statically resolved transfer target is unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetFault {
    /// The target address or index is outside the code store / tables.
    OutOfRange,
    /// A `DIRECTCALL`/`SHORTDIRECTCALL` destination that is not any
    /// known procedure header.
    NotAHeader,
    /// A `LOCALCALL` entry-vector index beyond the module's `nprocs`.
    EvIndexOutOfRange,
    /// An `EXTERNALCALL` link-vector index beyond the module's link
    /// vector.
    LvIndexOutOfRange,
    /// Resolvable targets whose declared argument counts disagree, so
    /// no single call-site stack depth can satisfy them all.
    ArityDisagrees,
}

impl fmt::Display for TargetFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetFault::OutOfRange => write!(f, "target out of range"),
            TargetFault::NotAHeader => write!(f, "target is not a procedure header"),
            TargetFault::EvIndexOutOfRange => write!(f, "entry-vector index out of range"),
            TargetFault::LvIndexOutOfRange => write!(f, "link-vector index out of range"),
            TargetFault::ArityDisagrees => write!(f, "resolved targets disagree on arity"),
        }
    }
}

/// One class of verification failure. Each variant corresponds to one
/// analysis: structural entry checks, the stack-depth abstract
/// interpreter, call-target resolution, descriptor resolution, or the
/// fusion-aware jump-target check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiagKind {
    /// The entry vector, header bytes or body range are malformed.
    BadEntry {
        /// What was wrong, in prose.
        reason: String,
    },
    /// The header's frame-size index is not in the image's ladder.
    BadSizeClass {
        /// The out-of-ladder index.
        fsi: u8,
    },
    /// A local-slot access beyond the capacity the header's size class
    /// actually provides (`size_of(fsi)` minus the frame header).
    SizeClassMismatch {
        /// The declared size-class index.
        fsi: u8,
        /// Local slots the class provides.
        capacity: u32,
        /// The out-of-capacity slot the instruction names.
        slot: u32,
    },
    /// An instruction pops below an empty evaluation stack on some
    /// path.
    StackUnderflow {
        /// Depth interval lower bound reaching the instruction.
        depth: u32,
        /// Words the instruction pops.
        pops: u32,
    },
    /// An instruction pushes beyond the depth limit on some path.
    StackOverflow {
        /// Depth the instruction can reach.
        depth: u32,
        /// The configured limit it exceeds.
        limit: u32,
    },
    /// A call site whose stack depth is not exactly the callee's
    /// argument count (the strict XFER discipline the compiler emits).
    CallDepthMismatch {
        /// Depth interval lower bound at the call.
        lo: u32,
        /// Depth interval upper bound at the call.
        hi: u32,
        /// The callee's declared argument count.
        nargs: u32,
    },
    /// An `XFER` whose stack depth cannot match the single-word
    /// transfer-record protocol (destination context word on top, at
    /// most one transferred value beneath).
    XferDepth {
        /// Depth interval lower bound at the `XFER`.
        lo: u32,
        /// Depth interval upper bound at the `XFER`.
        hi: u32,
    },
    /// A procedure whose `RET` sites leave different depths, so no
    /// caller resumption depth is defined.
    InconsistentReturnArity {
        /// One observed return depth.
        first: u32,
        /// A conflicting one.
        second: u32,
    },
    /// A `DIRECTCALL`/`SHORTDIRECTCALL`/`LOCALCALL`/`EXTERNALCALL`
    /// whose statically resolved destination is unusable.
    BadCallTarget {
        /// The offending absolute target (code byte address for direct
        /// calls, table index otherwise).
        target: u32,
        /// Why it is unusable.
        fault: TargetFault,
    },
    /// A link-vector entry naming a module or entry the image does not
    /// contain.
    UnboundModule {
        /// The link-vector slot.
        lv_index: u32,
        /// The module index it names.
        module: usize,
    },
    /// A `LOADIMM`-fed context operation whose descriptor word cannot
    /// name any procedure in the image.
    BadDescriptor {
        /// The raw descriptor word.
        word: u16,
    },
    /// A jump landing inside an instruction's encoding rather than on
    /// a decoded boundary.
    MidInstructionJump {
        /// The absolute byte offset jumped to.
        target: u32,
        /// True when the offset falls inside the byte span of a fused
        /// superinstruction pair (entry at the pair's *second* op is a
        /// legal singleton and is not flagged).
        in_fused_pair: bool,
    },
    /// A jump leaving the procedure body entirely.
    JumpOutOfBody {
        /// The absolute byte offset jumped to.
        target: i64,
    },
    /// Reachable code runs into bytes that do not decode.
    Undecodable {
        /// Where decoding failed, as an absolute byte offset.
        at: u32,
    },
    /// A reachable path falls off the end of the procedure body
    /// without a transfer.
    FallsOffEnd,
    /// **Informational**: an `EXTERNALCALL` routed through a remote
    /// procedure descriptor. The local marshalling stub is verified
    /// like any procedure (so the certificate stands and check elision
    /// stays licensed), but the call's real effects happen on another
    /// machine the static proof cannot see into — tooling may want to
    /// know where those seams are.
    RemoteTarget {
        /// The link-vector slot carrying the remote descriptor.
        lv_index: u32,
        /// The node the descriptor is bound to at link time.
        node: u16,
        /// The remote procedure's name.
        name: String,
    },
    /// **Informational**: a global slot the image writes but never
    /// reads. Only emitted when the effect analysis can prove the
    /// store unobservable — no `LOADGLOBAL` of the slot anywhere in
    /// the owning segment, no address of the global frame taken, and
    /// no pointer reads or control escapes anywhere in the image that
    /// could alias it.
    DeadStore {
        /// The written-but-never-read global slot index.
        slot: u32,
    },
    /// **Informational**: an instruction boundary the dataflow proves
    /// unreachable from its procedure's entry (dead code; decoded but
    /// never executed on any path).
    UnreachableCode {
        /// First absolute byte offset of the unreachable run.
        at: u32,
    },
}

impl DiagKind {
    /// Whether this diagnostic is informational only: it reports a
    /// fact about the image, not a violation, and does not fail
    /// verification ([`VerifyReport::is_ok`] ignores it).
    pub fn is_informational(&self) -> bool {
        matches!(
            self,
            DiagKind::RemoteTarget { .. }
                | DiagKind::DeadStore { .. }
                | DiagKind::UnreachableCode { .. }
        )
    }
}

impl fmt::Display for DiagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagKind::BadEntry { reason } => write!(f, "malformed entry: {reason}"),
            DiagKind::BadSizeClass { fsi } => {
                write!(f, "frame-size index {fsi} is not in the image's ladder")
            }
            DiagKind::SizeClassMismatch {
                fsi,
                capacity,
                slot,
            } => write!(
                f,
                "local slot {slot} exceeds size class {fsi}'s capacity of {capacity}"
            ),
            DiagKind::StackUnderflow { depth, pops } => {
                write!(f, "pops {pops} at depth {depth}: stack underflow")
            }
            DiagKind::StackOverflow { depth, limit } => {
                write!(f, "reaches depth {depth} over the limit of {limit}")
            }
            DiagKind::CallDepthMismatch { lo, hi, nargs } => write!(
                f,
                "call at depth [{lo},{hi}] but the callee takes exactly {nargs} argument(s)"
            ),
            DiagKind::XferDepth { lo, hi } => write!(
                f,
                "XFER at depth [{lo},{hi}]; the transfer protocol needs [1,2]"
            ),
            DiagKind::InconsistentReturnArity { first, second } => {
                write!(
                    f,
                    "returns at depth {first} on one path, {second} on another"
                )
            }
            DiagKind::BadCallTarget { target, fault } => {
                write!(f, "call target {target:#06x}: {fault}")
            }
            DiagKind::UnboundModule { lv_index, module } => write!(
                f,
                "link-vector slot {lv_index} names module {module}, which the image does not bind"
            ),
            DiagKind::BadDescriptor { word } => {
                write!(f, "descriptor {word:#06x} names no procedure in the image")
            }
            DiagKind::MidInstructionJump {
                target,
                in_fused_pair,
            } => {
                write!(f, "jump to {target:#06x} lands mid-instruction")?;
                if *in_fused_pair {
                    write!(f, " (inside a fused superinstruction pair)")?;
                }
                Ok(())
            }
            DiagKind::JumpOutOfBody { target } => {
                write!(f, "jump to {target:#06x} leaves the procedure body")
            }
            DiagKind::Undecodable { at } => {
                write!(f, "reachable code fails to decode at {at:#06x}")
            }
            DiagKind::FallsOffEnd => write!(f, "control falls off the end of the body"),
            DiagKind::RemoteTarget {
                lv_index,
                node,
                name,
            } => write!(
                f,
                "note: XFER through remote descriptor at link slot {lv_index}: `{name}` on node {node}"
            ),
            DiagKind::DeadStore { slot } => {
                write!(f, "note: global slot {slot} is written but never read")
            }
            DiagKind::UnreachableCode { at } => {
                write!(f, "note: code at c{at:#06x} is unreachable")
            }
        }
    }
}

/// One diagnostic, with module/procedure/pc provenance and the
/// offending instruction rendered via `fpc-isa`'s disassembler when
/// the bytes decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Module index within the image.
    pub module: usize,
    /// Module name, for human-readable rendering.
    pub module_name: String,
    /// Entry-vector index of the procedure, when the diagnostic is
    /// attributable to one.
    pub ev_index: u16,
    /// Absolute code byte offset the diagnostic anchors to.
    pub pc: u32,
    /// The instruction at `pc`, disassembled, or empty when the bytes
    /// there do not decode.
    pub rendered: String,
    /// What went wrong.
    pub kind: DiagKind,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at c{:#06x}: {}",
            self.module_name, self.ev_index, self.pc, self.kind
        )?;
        if !self.rendered.is_empty() {
            write!(f, "\n    {}", self.rendered)?;
        }
        Ok(())
    }
}

/// Per-procedure facts the analysis established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcSummary {
    /// Module index.
    pub module: usize,
    /// Entry-vector index.
    pub ev_index: u16,
    /// Header byte address.
    pub header: u32,
    /// Declared argument count.
    pub nargs: u32,
    /// Frame-size class index.
    pub fsi: u8,
    /// Maximum evaluation-stack depth any reachable path attains, or
    /// `None` when the procedure body is unreachable dead code with no
    /// instructions analysed.
    pub max_stack: Option<u32>,
    /// Depth every `RET` leaves, when the procedure returns at all.
    pub ret_arity: Option<u32>,
    /// Indices (into the report's proc table) of procedures this one
    /// calls through statically resolved sites.
    pub calls: Vec<usize>,
}

/// The statically proven migration safe points of one procedure:
/// instruction boundaries where a parked context's live state is fully
/// architectural — the eval-stack depth is exact and within the
/// transfer-residue budget, and no remote marshal can be in flight
/// (remote call sites are excluded, since a parked attempt rewinds the
/// pc onto the call instruction). The dynamic preconditions — no
/// pending fault, no installed handler frame mid-dispatch — are the
/// runtime's to check; this map is the static candidate set
/// snapshot/migration consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcSafePoints {
    /// Owning (code) module index.
    pub module: usize,
    /// Entry-vector index.
    pub ev_index: u16,
    /// Absolute code byte offsets of the safe boundaries, ascending.
    pub pcs: Vec<u32>,
}

/// The certificate a clean verification issues: what the image was
/// proven to respect, and therefore what a [`fpc_vm::MachineConfig`]
/// with `verified_images` may skip checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// No reachable path exceeds this evaluation-stack depth,
    /// transfer residue included (see [`VerifyReport::stack_limit`]).
    pub max_stack_depth: u32,
    /// Procedures proven.
    pub procs: usize,
    /// Total frame words of the deepest acyclic call chain from the
    /// entry, or `None` when the call graph has a cycle reachable from
    /// the entry (recursion: frame depth is data-dependent).
    pub frame_words_bound: Option<u32>,
    /// Per-procedure migration safe points (see [`ProcSafePoints`]).
    pub safe_points: Vec<ProcSafePoints>,
}

/// One recursion cycle in the resolved call graph, as a list of
/// indices into the report's proc table.
pub type Cycle = Vec<usize>;

/// Everything the verifier established about an image.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// All diagnostics, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-procedure facts, indexed by the analysis's proc ids.
    pub procs: Vec<ProcSummary>,
    /// Recursion cycles found in the resolved call graph (strongly
    /// connected components with more than one member, or self-loops).
    pub cycles: Vec<Cycle>,
    /// The stack-depth limit the analysis checked against. When the
    /// image transfers (`XFER`), this is the machine limit minus
    /// [`VerifyReport::xfer_residue`]: a transfer that enters a
    /// creation context can leave its argument record riding the
    /// processor stack below the new frame's accounting, so the
    /// verifier budgets the same headroom the code generator reserves.
    pub stack_limit: u32,
    /// Words of transfer-residue headroom withheld from
    /// [`VerifyReport::stack_limit`] (0 for transfer-free images).
    pub xfer_residue: u32,
    /// Number of fused superinstruction pairs the jump-target check
    /// modelled (mirroring the VM's greedy pairing).
    pub fused_pairs: usize,
    /// Total frame words of the deepest acyclic call chain from the
    /// entry, or `None` when recursion reachable from the entry makes
    /// frame depth data-dependent.
    pub frame_words_bound: Option<u32>,
    /// Interprocedural effect summaries, parallel to
    /// [`VerifyReport::procs`] (each is the whole-program summary of
    /// the procedure and everything it can reach).
    pub effects: Vec<crate::EffectSummary>,
    /// Statically safe instruction boundaries, parallel to
    /// [`VerifyReport::procs`] (see [`ProcSafePoints`]).
    pub safe_points: Vec<Vec<u32>>,
}

impl VerifyReport {
    /// Whether verification succeeded. Informational diagnostics
    /// (see [`DiagKind::is_informational`]) do not count against it.
    pub fn is_ok(&self) -> bool {
        self.diagnostics.iter().all(|d| d.kind.is_informational())
    }

    /// The proc-table index of `(module, ev_index)`, resolving module
    /// instances to their code owner via `code_of` is the caller's
    /// job — summaries are keyed by owning module.
    pub fn proc_id(&self, module: usize, ev_index: u16) -> Option<usize> {
        self.procs
            .iter()
            .position(|p| p.module == module && p.ev_index == ev_index)
    }

    /// The whole-program effect summary of `(owning module, ev_index)`,
    /// when the procedure exists.
    pub fn effects_of(&self, module: usize, ev_index: u16) -> Option<&crate::EffectSummary> {
        self.proc_id(module, ev_index)
            .and_then(|i| self.effects.get(i))
    }

    /// Whether `(owning module, ev_index)` is certified retry-safe: the
    /// report is clean *and* the procedure's effect summary proves
    /// re-execution unobservable (see
    /// [`EffectSummary::retry_safe`](crate::EffectSummary::retry_safe)).
    pub fn retry_safe(&self, module: usize, ev_index: u16) -> bool {
        self.is_ok()
            && self
                .effects_of(module, ev_index)
                .is_some_and(|e| e.retry_safe())
    }

    /// The certificate, when verification succeeded.
    pub fn certificate(&self) -> Option<Certificate> {
        if !self.is_ok() {
            return None;
        }
        Some(Certificate {
            max_stack_depth: self
                .procs
                .iter()
                .filter_map(|p| p.max_stack)
                .max()
                .unwrap_or(0)
                + self.xfer_residue,
            procs: self.procs.len(),
            frame_words_bound: self.frame_words_bound,
            safe_points: self
                .procs
                .iter()
                .zip(&self.safe_points)
                .map(|(p, pcs)| ProcSafePoints {
                    module: p.module,
                    ev_index: p.ev_index,
                    pcs: pcs.clone(),
                })
                .collect(),
        })
    }
}

impl Certificate {
    /// Mints the license that arms the VM's tier-5 native compiler
    /// ([`fpc_vm::Machine::arm_native`]). Only clean verifications
    /// produce a [`Certificate`], so holding one *is* the eligibility
    /// proof; the license carries the proven stack bound for the VM's
    /// final fit check against its configured stack depth.
    pub fn native_license(&self) -> fpc_vm::NativeLicense {
        fpc_vm::NativeLicense::new(self.max_stack_depth, self.procs)
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            writeln!(
                f,
                "OK: {} procedure(s), max stack depth {} (limit {}), {} fused pair(s)",
                self.procs.len(),
                self.procs
                    .iter()
                    .filter_map(|p| p.max_stack)
                    .max()
                    .unwrap_or(0),
                self.stack_limit,
                self.fused_pairs,
            )?;
            match self.frame_words_bound {
                Some(w) => writeln!(f, "frame bound: {w} words on the deepest call chain")?,
                None => writeln!(
                    f,
                    "frame bound: none ({} recursion cycle(s))",
                    self.cycles.len()
                )?,
            }
            for d in &self.diagnostics {
                writeln!(f, "  {d}")?;
            }
        } else {
            let hard = self
                .diagnostics
                .iter()
                .filter(|d| !d.kind.is_informational())
                .count();
            writeln!(f, "FAILED: {hard} diagnostic(s)")?;
            for d in &self.diagnostics {
                writeln!(f, "  {d}")?;
            }
        }
        Ok(())
    }
}
