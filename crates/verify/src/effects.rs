//! Interprocedural effect summaries: what each procedure can touch.
//!
//! The stack analysis proves images *well-formed*; this pass extends
//! the certificate to *what a procedure can do to observable state*.
//! Per procedure it computes a summary lattice — global-frame
//! read/write footprints as per-module slot intervals, pointer-memory
//! effects, output, allocator donations, module rebinds, trap
//! reachability, remote-call seams, context operations — from the
//! reachable ops of the settled dataflow, then solves the
//! whole-program summary as a fixpoint over the resolved call graph.
//! Recursion cycles (the Tarjan components the stack analysis already
//! found) and control escapes (`XFER`, `PROCESSSWITCH`) are joined to
//! the conservative top element `unknown`; the remote boundary
//! contributes its arity-matched local stub (pure) plus the
//! `calls_remote` mark, since the callee's real effects happen on a
//! machine the static proof cannot see into.
//!
//! Two licensed capabilities fall out:
//!
//! * **Retry safety** ([`EffectSummary::retry_safe`]): a procedure
//!   whose summary proves no observable-state mutation outside its
//!   result record — no global writes, no pointer writes, no output,
//!   no allocator/linkage mutation, no context creation, no nested
//!   remote calls — can be re-run from scratch with no effect the
//!   first run did not already have. `fpc-rpc` consults this to
//!   license automatic retry of timed-out calls.
//! * **Safe points** (computed in the analysis, exported on the
//!   [`Certificate`](crate::Certificate)): instruction boundaries
//!   where the context's live state is fully architectural — exact
//!   eval-stack depth within the transfer-residue budget and no
//!   in-flight marshal — the contract surface snapshot/migration
//!   consumes.

use std::collections::BTreeMap;
use std::fmt;

use fpc_isa::Instr;

/// Per-procedure effect summary. The lattice join is field-wise:
/// interval hull on footprints, disjunction on the flags, with
/// `unknown` as the absorbing top element for verdicts (footprints and
/// flags are still reported best-effort under `unknown`, for
/// diagnostics).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EffectSummary {
    /// Global-frame slots read, per owning module: `module → [lo, hi]`
    /// slot-index interval hull.
    pub global_reads: BTreeMap<usize, (u32, u32)>,
    /// Global-frame slots written, per owning module.
    pub global_writes: BTreeMap<usize, (u32, u32)>,
    /// Reads memory through a computed address (`READ`/`LOADINDEX`).
    pub reads_memory: bool,
    /// Writes memory through a computed address
    /// (`WRITE`/`STOREINDEX`).
    pub writes_memory: bool,
    /// Takes the address of a global or local slot
    /// (`LGA`/`LLA`), exposing it to pointer traffic.
    pub address_exposed: bool,
    /// Appends to the output stream (`OUT`).
    pub writes_output: bool,
    /// Donates fault-reserve words back to the allocator (`DONATE`).
    pub donates: bool,
    /// Requests a module rebind (`BINDMOD`).
    pub binds_modules: bool,
    /// Can raise a trap (`TRAP n`, or `DIV`/`MOD` by zero).
    pub may_trap: bool,
    /// Creates, frees or switches execution contexts
    /// (`NEWCONTEXT`/`SPAWN`/`FREECONTEXT`/`XFER`/`PROCESSSWITCH`).
    pub context_ops: bool,
    /// Runs remote-fault handler protocol ops (`RFINFO`/`FAILOVER`).
    pub handler_ops: bool,
    /// Calls through a remote descriptor: the real effects happen on
    /// another machine.
    pub calls_remote: bool,
    /// Reachable `EXTERNALCALL` pcs routed through remote descriptors.
    pub remote_sites: Vec<u32>,
    /// Member of a recursion cycle in the resolved call graph.
    pub recursive: bool,
    /// Conservative top: the summary over-approximates but cannot
    /// bound the procedure's effects (recursion, or control escapes
    /// via `XFER`/`PROCESSSWITCH` whose destinations are dynamic).
    pub unknown: bool,
}

/// Widens `interval` to cover `slot`.
fn widen(map: &mut BTreeMap<usize, (u32, u32)>, module: usize, slot: u32) {
    map.entry(module)
        .and_modify(|iv| *iv = (iv.0.min(slot), iv.1.max(slot)))
        .or_insert((slot, slot));
}

/// Hulls `b`'s footprint into `a`.
fn hull(a: &mut BTreeMap<usize, (u32, u32)>, b: &BTreeMap<usize, (u32, u32)>) {
    for (&m, &(lo, hi)) in b {
        a.entry(m)
            .and_modify(|iv| *iv = (iv.0.min(lo), iv.1.max(hi)))
            .or_insert((lo, hi));
    }
}

impl EffectSummary {
    /// Accumulates one reachable instruction's intraprocedural effect.
    /// `module` is the owning (code) module whose global frame
    /// `LOADGLOBAL`/`STOREGLOBAL` address from this body.
    pub(crate) fn record(&mut self, instr: Instr, module: usize) {
        match instr {
            Instr::LoadGlobal(n) => widen(&mut self.global_reads, module, n as u32),
            Instr::StoreGlobal(n) => widen(&mut self.global_writes, module, n as u32),
            Instr::LoadGlobalAddr(_) | Instr::LoadLocalAddr(_) => self.address_exposed = true,
            Instr::Read | Instr::LoadIndex => self.reads_memory = true,
            Instr::Write | Instr::StoreIndex => self.writes_memory = true,
            Instr::Out => self.writes_output = true,
            Instr::Donate => self.donates = true,
            Instr::BindModule => self.binds_modules = true,
            Instr::Trap(_) | Instr::Div | Instr::Mod => self.may_trap = true,
            Instr::RemoteInfo | Instr::Failover => self.handler_ops = true,
            Instr::NewContext | Instr::Spawn | Instr::FreeContext => self.context_ops = true,
            Instr::Xfer | Instr::ProcessSwitch => {
                // The destination context is a run-time value: control
                // (and therefore effects) can leave the analyzed call
                // tree entirely.
                self.context_ops = true;
                self.unknown = true;
            }
            _ => {}
        }
    }

    /// Marks a reachable remote call site at `pc`.
    pub(crate) fn record_remote_site(&mut self, pc: u32) {
        self.calls_remote = true;
        if !self.remote_sites.contains(&pc) {
            self.remote_sites.push(pc);
        }
    }

    /// Field-wise lattice join (callee into caller). Remote sites are
    /// *not* inherited: they locate this procedure's own seams.
    pub(crate) fn join(&mut self, other: &EffectSummary) {
        hull(&mut self.global_reads, &other.global_reads);
        hull(&mut self.global_writes, &other.global_writes);
        self.reads_memory |= other.reads_memory;
        self.writes_memory |= other.writes_memory;
        self.address_exposed |= other.address_exposed;
        self.writes_output |= other.writes_output;
        self.donates |= other.donates;
        self.binds_modules |= other.binds_modules;
        self.may_trap |= other.may_trap;
        self.context_ops |= other.context_ops;
        self.handler_ops |= other.handler_ops;
        self.calls_remote |= other.calls_remote;
        self.unknown |= other.unknown;
    }

    /// Whether re-running this procedure from scratch can have any
    /// observable effect its first run did not already have. Reads
    /// (global, local or pointer), traps and handler-protocol ops are
    /// harmless under re-execution; any mutation of state that
    /// outlives the activation — global writes, pointer writes,
    /// output, allocator donations, module rebinds, context creation —
    /// or an effect the analysis cannot bound disqualifies it, as does
    /// a nested remote call (re-running would re-issue it).
    pub fn retry_safe(&self) -> bool {
        !self.unknown
            && self.global_writes.is_empty()
            && !self.writes_memory
            && !self.writes_output
            && !self.donates
            && !self.binds_modules
            && !self.context_ops
            && !self.calls_remote
    }
}

impl fmt::Display for EffectSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        for (m, (lo, hi)) in &self.global_reads {
            parts.push(format!("gr m{m}[{lo}..={hi}]"));
        }
        for (m, (lo, hi)) in &self.global_writes {
            parts.push(format!("gw m{m}[{lo}..={hi}]"));
        }
        for (on, tag) in [
            (self.reads_memory, "mem-read"),
            (self.writes_memory, "mem-write"),
            (self.address_exposed, "addr-exposed"),
            (self.writes_output, "out"),
            (self.donates, "donate"),
            (self.binds_modules, "bindmod"),
            (self.may_trap, "trap?"),
            (self.context_ops, "ctx"),
            (self.handler_ops, "handler"),
            (self.calls_remote, "remote"),
            (self.recursive, "recursive"),
            (self.unknown, "⊤"),
        ] {
            if on {
                parts.push(tag.to_string());
            }
        }
        if parts.is_empty() {
            write!(f, "pure")
        } else {
            write!(f, "{}", parts.join(" "))
        }
    }
}

/// Solves the interprocedural fixpoint: each procedure's whole-program
/// summary is its intraprocedural summary joined with every resolved
/// callee's solved summary. Cycle members (the stack analysis's Tarjan
/// components) short-circuit to their intra summary with `unknown` and
/// `recursive` set — the conservative top the issue of a certificate
/// demands at recursion — which also makes the memoised DFS over the
/// remaining acyclic graph terminate.
pub(crate) fn solve(
    intra: &[EffectSummary],
    edges: &[Vec<usize>],
    cyclic: &[bool],
) -> Vec<EffectSummary> {
    fn dfs(
        pid: usize,
        intra: &[EffectSummary],
        edges: &[Vec<usize>],
        cyclic: &[bool],
        memo: &mut [Option<EffectSummary>],
    ) -> EffectSummary {
        if let Some(s) = &memo[pid] {
            return s.clone();
        }
        let mut s = intra[pid].clone();
        if cyclic[pid] {
            s.recursive = true;
            s.unknown = true;
        } else {
            for &t in &edges[pid] {
                let callee = dfs(t, intra, edges, cyclic, memo);
                s.join(&callee);
            }
        }
        memo[pid] = Some(s.clone());
        s
    }
    let mut memo: Vec<Option<EffectSummary>> = vec![None; intra.len()];
    (0..intra.len())
        .map(|pid| dfs(pid, intra, edges, cyclic, &mut memo))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(f: impl FnOnce(&mut EffectSummary)) -> EffectSummary {
        let mut s = EffectSummary::default();
        f(&mut s);
        s
    }

    #[test]
    fn pure_summary_is_retry_safe() {
        let s = summary(|s| {
            s.record(Instr::LoadGlobal(3), 0);
            s.record(Instr::Add, 0);
            s.record(Instr::Trap(1), 0);
        });
        assert!(s.retry_safe(), "reads and traps are re-runnable: {s}");
        assert_eq!(s.global_reads.get(&0), Some(&(3, 3)));
    }

    #[test]
    fn mutations_disqualify_retry() {
        for instr in [
            Instr::StoreGlobal(0),
            Instr::Write,
            Instr::StoreIndex,
            Instr::Out,
            Instr::Donate,
            Instr::BindModule,
            Instr::NewContext,
            Instr::Xfer,
        ] {
            let s = summary(|s| s.record(instr, 0));
            assert!(!s.retry_safe(), "{instr:?} must disqualify retry");
        }
    }

    #[test]
    fn footprints_hull_on_join() {
        let mut a = summary(|s| s.record(Instr::StoreGlobal(2), 1));
        let b = summary(|s| s.record(Instr::StoreGlobal(7), 1));
        a.join(&b);
        assert_eq!(a.global_writes.get(&1), Some(&(2, 7)));
    }

    #[test]
    fn cycles_solve_to_top() {
        // 0 -> 1 <-> 2, with 1 writing a global.
        let intra = vec![
            EffectSummary::default(),
            summary(|s| s.record(Instr::StoreGlobal(4), 0)),
            EffectSummary::default(),
        ];
        let edges = vec![vec![1], vec![2], vec![1]];
        let cyclic = vec![false, true, true];
        let solved = solve(&intra, &edges, &cyclic);
        assert!(solved[1].unknown && solved[1].recursive);
        assert!(solved[0].unknown, "caller inherits the cycle's top");
        assert_eq!(
            solved[0].global_writes.get(&0),
            Some(&(4, 4)),
            "best-effort footprint still propagates"
        );
        assert!(!solved[0].recursive, "recursion is not inherited");
    }

    #[test]
    fn remote_sites_stay_local() {
        let mut callee = EffectSummary::default();
        callee.record_remote_site(0x40);
        let mut caller = EffectSummary::default();
        caller.join(&callee);
        assert!(caller.calls_remote);
        assert!(caller.remote_sites.is_empty(), "sites locate own seams");
    }
}
