//! `fpc-verify` — static bytecode verifier for Fast Procedure Calls
//! images.
//!
//! The verifier proves, before a single instruction executes, the
//! properties the VM otherwise checks on every step:
//!
//! * **Stack safety.** An abstract interpreter runs each procedure
//!   body over the interval domain `[lo, hi]` of evaluation-stack
//!   depths, joining at merge points, and rejects any path that could
//!   underflow or exceed the configured stack depth.
//! * **Transfer safety.** Every `DIRECTCALL`, `SHORTDIRECTCALL`,
//!   `LOCALCALL` and `EXTERNALCALL` is resolved statically against the
//!   image's entry vectors and link vectors (pushdown-style: a call's
//!   successor depth is its callee's proven return arity, not a join
//!   over every return in the program), and `LOADIMM`-fed descriptor
//!   creations are inverted back to procedures. Unbound, out-of-range
//!   and mid-instruction targets — including jumps into the interior
//!   of a fused superinstruction pair — are typed diagnostics.
//! * **Frame bounds.** The resolved call graph is searched for
//!   recursion cycles; acyclic programs get a worst-case frame-words
//!   bound from the entry procedure.
//!
//! A clean [`VerifyReport`] is a certificate: loading the image with
//! [`MachineConfig::with_verified_images`] lets the host elide the
//! per-step dynamic checks the proof subsumes, while every *simulated*
//! counter stays bit-identical (the parity ladder enforces this).
//!
//! ```
//! use fpc_verify::{verify_image, VerifyOptions};
//! use fpc_vm::{ImageBuilder, ProcRef, ProcSpec};
//! use fpc_isa::Instr;
//!
//! let mut b = ImageBuilder::new();
//! let m = b.module("main");
//! b.proc_with(m, ProcSpec::new("main", 0, 0), |a| {
//!     a.instr(Instr::LoadImm(42));
//!     a.instr(Instr::Out);
//!     a.instr(Instr::Halt);
//! });
//! let image = b.build(ProcRef { module: 0, ev_index: 0 }).unwrap();
//! let report = verify_image(&image, &VerifyOptions::default());
//! assert!(report.is_ok(), "{report}");
//! ```

#![warn(missing_docs)]

mod analysis;
mod effects;
mod procs;
mod report;

pub use effects::EffectSummary;
pub use report::{
    Certificate, Cycle, DiagKind, Diagnostic, ProcSafePoints, ProcSummary, TargetFault,
    VerifyReport,
};

use fpc_vm::{Image, MachineConfig};

/// Parameters the proof is made against.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Evaluation-stack capacity in words. Must match the
    /// [`MachineConfig::stack_depth`] the image will run under — the
    /// certificate only licenses check elision at this exact limit.
    pub stack_depth: usize,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions { stack_depth: 16 }
    }
}

impl VerifyOptions {
    /// Options matching a concrete machine configuration.
    pub fn for_config(config: &MachineConfig) -> Self {
        VerifyOptions {
            stack_depth: config.stack_depth,
        }
    }
}

/// Verifies a linked image, returning every diagnostic found plus
/// per-procedure summaries and the call-graph facts.
pub fn verify_image(image: &Image, opts: &VerifyOptions) -> VerifyReport {
    analysis::Analysis::run(image, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpc_isa::Instr;
    use fpc_vm::{ImageBuilder, ProcRef, ProcSpec};

    fn entry() -> ProcRef {
        ProcRef {
            module: 0,
            ev_index: 0,
        }
    }

    #[test]
    fn straight_line_verifies_with_exact_depth() {
        let mut b = ImageBuilder::new();
        let m = b.module("m");
        b.proc_with(m, ProcSpec::new("main", 0, 1), |a| {
            a.instr(Instr::LoadImm(3));
            a.instr(Instr::LoadImm(4));
            a.instr(Instr::Add);
            a.instr(Instr::StoreLocal(0));
            a.instr(Instr::LoadLocal(0));
            a.instr(Instr::Out);
            a.instr(Instr::Halt);
        });
        let image = b.build(entry()).unwrap();
        let report = verify_image(&image, &VerifyOptions::default());
        assert!(report.is_ok(), "{report}");
        assert_eq!(report.procs.len(), 1);
        assert_eq!(report.procs[0].max_stack, Some(2));
        assert!(report.cycles.is_empty());
        assert!(report.frame_words_bound.is_some());
    }

    #[test]
    fn underflow_is_rejected() {
        let mut b = ImageBuilder::new();
        let m = b.module("m");
        b.proc_with(m, ProcSpec::new("main", 0, 0), |a| {
            a.instr(Instr::Drop);
            a.instr(Instr::Halt);
        });
        let image = b.build(entry()).unwrap();
        let report = verify_image(&image, &VerifyOptions::default());
        assert!(!report.is_ok());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| matches!(d.kind, DiagKind::StackUnderflow { .. })));
    }

    #[test]
    fn overflow_is_rejected() {
        let mut b = ImageBuilder::new();
        let m = b.module("m");
        b.proc_with(m, ProcSpec::new("main", 0, 0), |a| {
            for _ in 0..17 {
                a.instr(Instr::LoadImm(1));
            }
            a.instr(Instr::Halt);
        });
        let image = b.build(entry()).unwrap();
        let report = verify_image(&image, &VerifyOptions { stack_depth: 16 });
        assert!(!report.is_ok());
        assert!(report.diagnostics.iter().any(|d| matches!(
            d.kind,
            DiagKind::StackOverflow {
                depth: 17,
                limit: 16
            }
        )));
    }

    #[test]
    fn branch_join_takes_interval_hull() {
        // One arm leaves an extra word: the RET sees [1, 2] and the
        // arity is inconsistent.
        let mut b = ImageBuilder::new();
        let m = b.module("m");
        b.proc_with(m, ProcSpec::new("main", 0, 0), |a| {
            a.instr(Instr::LoadImm(0));
            let l = a.label();
            a.jump_zero(l);
            a.instr(Instr::LoadImm(7));
            a.bind(l);
            a.instr(Instr::LoadImm(9));
            a.instr(Instr::Ret);
        });
        let image = b.build(entry()).unwrap();
        let report = verify_image(&image, &VerifyOptions::default());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| matches!(d.kind, DiagKind::InconsistentReturnArity { .. })));
    }

    #[test]
    fn recursion_is_reported_as_cycle() {
        let mut b = ImageBuilder::new();
        let m = b.module("m");
        b.proc_with(m, ProcSpec::new("main", 0, 0), |a| {
            a.instr(Instr::LocalCall(0));
            a.instr(Instr::Halt);
        });
        let image = b.build(entry()).unwrap();
        let report = verify_image(&image, &VerifyOptions::default());
        assert!(report.is_ok(), "{report}");
        assert_eq!(report.cycles.len(), 1);
        assert!(report.frame_words_bound.is_none());
    }

    #[test]
    fn remote_imports_verify_with_an_informational_note() {
        // A remote descriptor resolves to its local marshalling stub,
        // so the image still certifies — check elision stays licensed
        // for modules with remote calls — while the remote seam is
        // surfaced as an informational RemoteTarget diagnostic.
        let mut b = ImageBuilder::new();
        let m = b.module("cli");
        let lv = b.import_remote(m, "echo", 3, 2, 1);
        b.proc_with(m, ProcSpec::new("main", 0, 0), move |a| {
            a.instr(Instr::LoadImm(1));
            a.instr(Instr::LoadImm(2));
            a.instr(Instr::ExternalCall(lv));
            a.instr(Instr::Out);
            a.instr(Instr::Halt);
        });
        let image = b.build(entry()).unwrap();
        let report = verify_image(&image, &VerifyOptions::default());
        assert!(report.is_ok(), "{report}");
        let notes: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.kind.is_informational())
            .collect();
        assert_eq!(notes.len(), 1, "exactly one remote call site");
        assert!(matches!(
            &notes[0].kind,
            DiagKind::RemoteTarget { lv_index: 0, node: 3, name } if name == "echo"
        ));
        assert!(
            report.certificate().is_some(),
            "remote imports must not revoke the certificate"
        );
    }

    #[test]
    fn call_depth_must_match_arity_exactly() {
        let mut b = ImageBuilder::new();
        let m = b.module("m");
        b.proc_with(m, ProcSpec::new("main", 0, 0), |a| {
            // Callee wants 0 args but one word is on the stack.
            a.instr(Instr::LoadImm(5));
            a.instr(Instr::LocalCall(1));
            a.instr(Instr::Halt);
        });
        b.proc_with(m, ProcSpec::new("leaf", 0, 0), |a| {
            a.instr(Instr::Ret);
        });
        let image = b.build(entry()).unwrap();
        let report = verify_image(&image, &VerifyOptions::default());
        assert!(report.diagnostics.iter().any(|d| matches!(
            d.kind,
            DiagKind::CallDepthMismatch {
                lo: 1,
                hi: 1,
                nargs: 0
            }
        )));
    }
}
