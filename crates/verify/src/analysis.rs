//! The analyses: stack-depth abstract interpretation, call-target
//! resolution, descriptor inversion, recursion-cycle detection and the
//! frame-depth bound.
//!
//! The depth domain is intervals `[lo, hi]` joined at merge points;
//! calls are resolved statically and treated pushdown-style — a call
//! site's successor depth is the callee's proven return arity, not a
//! merge over every return in the program — which is what makes the
//! bound exact on straight-line code.

use std::collections::{HashMap, HashSet, VecDeque};

use fpc_core::{Context, ContextWord};
use fpc_isa::Instr;
use fpc_vm::{gft_entries_for, Image};

use crate::effects::{solve, EffectSummary};
use crate::procs::{discover, Discovery};
use crate::report::{Cycle, DiagKind, Diagnostic, ProcSummary, TargetFault, VerifyReport};
use crate::VerifyOptions;

/// Fixpoint state per op: `None` = unreachable, else the entry-depth
/// interval `[lo, hi]`.
type OpStates = Vec<Option<(u32, u32)>>;

/// Return-arity lattice: `Bottom` (never returns) < `Known(n)` <
/// `Conflict`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arity {
    Bottom,
    Known(u32),
    Conflict,
}

impl Arity {
    fn join(self, other: Arity) -> Arity {
        match (self, other) {
            (Arity::Bottom, a) | (a, Arity::Bottom) => a,
            (Arity::Known(a), Arity::Known(b)) if a == b => Arity::Known(a),
            _ => Arity::Conflict,
        }
    }
}

/// A statically resolved call site.
enum Site {
    /// Callee proc ids (arity-consistent, non-empty).
    Procs(Vec<usize>),
    /// Unusable: the diagnostics to emit at this pc.
    Bad(Vec<DiagKind>),
}

/// One step's outcome: successor op indices with their entry
/// intervals, plus any diagnostics the op raises at this interval.
struct Step {
    succs: Vec<(usize, (u32, u32))>,
    diags: Vec<DiagKind>,
    /// Return depth interval when the op is a `RET` with a consistent
    /// depth.
    ret: Option<(u32, u32)>,
    /// Depth the op can attain (post-state upper bound), for the
    /// max-stack summary.
    reach: u32,
}

/// Plain `(pops, pushes)` for ops with no control effect, `None` for
/// the control ops handled in [`Analysis::step`].
fn effect(i: Instr) -> Option<(u32, u32)> {
    use Instr::*;
    Some(match i {
        LoadLocal(_) | LoadLocalAddr(_) | LoadGlobalAddr(_) | LoadGlobal(_) | LoadImm(_) => (0, 1),
        StoreLocal(_) | StoreGlobal(_) => (1, 0),
        Read => (1, 1),
        Write => (2, 0),
        LoadIndex => (2, 1),
        StoreIndex => (3, 0),
        Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr => (2, 1),
        CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe => (2, 1),
        Neg | AddImm(_) => (1, 1),
        Dup => (1, 2),
        Drop => (1, 0),
        Exch => (2, 2),
        AllocRecord(_) => (0, 1),
        FreeRecord => (1, 0),
        NewContext | Spawn | Donate | BindModule => (1, 1),
        FreeContext | Out | Failover => (1, 0),
        ReturnContext | RemoteInfo => (0, 1),
        ProcessSwitch | Noop => (0, 0),
        Jump(_) | JumpZero(_) | JumpNotZero(_) | ExternalCall(_) | LocalCall(_) | DirectCall(_)
        | ShortDirectCall(_) | Ret | Xfer | Trap(_) | Halt => return None,
    })
}

/// The local-slot index an instruction names, for the size-class
/// capacity check.
fn local_slot(i: Instr) -> Option<u32> {
    match i {
        Instr::LoadLocal(k) | Instr::StoreLocal(k) | Instr::LoadLocalAddr(k) => Some(k as u32),
        _ => None,
    }
}

/// Headroom withheld from the stack limit when the image transfers:
/// an `XFER` entering a creation context leaves its argument record
/// riding the processor stack *below* the created frame's own depth
/// accounting (`perform_xfer` is exempt from the strict stack check
/// for exactly this reason), so the physical stack can run up to this
/// many words above the per-procedure model. Matches the headroom the
/// code generator reserves (`fpc_compiler::MAX_DEPTH` = 14 of 16).
const XFER_RESIDUE_WORDS: u32 = 2;

pub(crate) struct Analysis<'a> {
    image: &'a Image,
    d: Discovery,
    limit: u32,
    residue: u32,
    /// Per-proc, per-op-index resolved call sites.
    sites: Vec<HashMap<usize, Site>>,
    /// Per-proc, op indices of `EXTERNALCALL`s routed through remote
    /// descriptors (the effect analysis's remote seams; excluded from
    /// safe points because a parked marshal rewinds the pc onto them).
    remote: Vec<HashSet<usize>>,
    arity: Vec<Arity>,
}

impl<'a> Analysis<'a> {
    pub fn run(image: &'a Image, opts: &VerifyOptions) -> VerifyReport {
        let d = discover(image);
        let transfers = d
            .procs
            .iter()
            .any(|p| p.ops.iter().any(|&(_, i, _)| matches!(i, Instr::Xfer)));
        let residue = if transfers { XFER_RESIDUE_WORDS } else { 0 };
        let limit = (opts.stack_depth as u32).saturating_sub(residue);
        let mut a = Analysis {
            sites: Vec::new(),
            remote: Vec::new(),
            arity: vec![Arity::Bottom; d.procs.len()],
            image,
            d,
            limit,
            residue,
        };
        let mut diagnostics = std::mem::take(&mut a.d.diagnostics);
        a.resolve_sites(&mut diagnostics);
        a.scan_descriptors(&mut diagnostics);
        a.arity_fixpoint();
        a.final_pass(diagnostics)
    }

    fn diag(&self, pid: usize, pc: u32, kind: DiagKind) -> Diagnostic {
        let p = &self.d.procs[pid];
        let rendered = p
            .bounds
            .get(&pc)
            .map(|&i| format!("c{:#06x}: {}", pc, p.ops[i].1))
            .unwrap_or_default();
        Diagnostic {
            module: p.seg,
            module_name: self.image.modules[p.seg].name.clone(),
            ev_index: p.ev_index,
            pc,
            rendered,
            kind,
        }
    }

    /// Resolves every call site in every body to proc ids, collecting
    /// diagnostics for unusable targets (these are static table facts,
    /// flagged whether or not the site is reachable).
    fn resolve_sites(&mut self, diagnostics: &mut Vec<Diagnostic>) {
        let mut sites: Vec<HashMap<usize, Site>> = Vec::with_capacity(self.d.procs.len());
        let mut remote: Vec<HashSet<usize>> = Vec::with_capacity(self.d.procs.len());
        for pid in 0..self.d.procs.len() {
            let mut map = HashMap::new();
            let mut remote_map = HashSet::new();
            for (idx, &(off, instr, _len)) in self.d.procs[pid].ops.iter().enumerate() {
                let site = match instr {
                    Instr::LocalCall(k) => Some(self.resolve_local(pid, k)),
                    Instr::ExternalCall(k) => Some(self.resolve_external(pid, k)),
                    Instr::DirectCall(addr) => Some(self.resolve_direct(addr as u64)),
                    Instr::ShortDirectCall(disp) => {
                        Some(self.resolve_direct((off as i64 + disp as i64) as u64))
                    }
                    _ => None,
                };
                if let Some(site) = site {
                    if let Site::Bad(kinds) = &site {
                        for k in kinds {
                            diagnostics.push(self.diag(pid, off, k.clone()));
                        }
                    }
                    // An EXTERNALCALL through a remote descriptor: the
                    // local stub carries the proof, but flag the seam
                    // as an informational note.
                    if let Instr::ExternalCall(k) = instr {
                        let seg = self.d.procs[pid].seg;
                        for ri in self.image.remote_imports.iter().filter(|ri| {
                            ri.lv_index == k
                                && (ri.module == seg
                                    || self.image.modules[ri.module].code_of == Some(seg))
                        }) {
                            remote_map.insert(idx);
                            diagnostics.push(self.diag(
                                pid,
                                off,
                                DiagKind::RemoteTarget {
                                    lv_index: k as u32,
                                    node: ri.node,
                                    name: ri.name.clone(),
                                },
                            ));
                        }
                    }
                    map.insert(idx, site);
                }
            }
            sites.push(map);
            remote.push(remote_map);
        }
        self.sites = sites;
        self.remote = remote;
    }

    fn arity_checked(&self, pids: Vec<usize>, target: u32) -> Site {
        let first = self.d.procs[pids[0]].nargs;
        if pids.iter().any(|&p| self.d.procs[p].nargs != first) {
            return Site::Bad(vec![DiagKind::BadCallTarget {
                target,
                fault: TargetFault::ArityDisagrees,
            }]);
        }
        Site::Procs(pids)
    }

    fn resolve_local(&self, pid: usize, k: u8) -> Site {
        let seg = self.d.procs[pid].seg;
        if (k as u16) < self.image.modules[seg].nprocs {
            match self.d.by_ref.get(&(seg, k as u16)) {
                Some(&callee) => self.arity_checked(vec![callee], k as u32),
                None => Site::Bad(vec![DiagKind::BadCallTarget {
                    target: k as u32,
                    fault: TargetFault::NotAHeader,
                }]),
            }
        } else {
            Site::Bad(vec![DiagKind::BadCallTarget {
                target: k as u32,
                fault: TargetFault::EvIndexOutOfRange,
            }])
        }
    }

    fn resolve_external(&self, pid: usize, k: u8) -> Site {
        // The executing global frame can belong to the owner or to any
        // instance sharing the segment; every candidate's link vector
        // must resolve, and all resolutions must agree on arity.
        let seg = self.d.procs[pid].seg;
        let mut pids = Vec::new();
        let mut bad = Vec::new();
        for (mi, m) in self.image.modules.iter().enumerate() {
            if mi != seg && m.code_of != Some(seg) {
                continue;
            }
            let Some(&t) = m.lv.get(k as usize) else {
                bad.push(DiagKind::BadCallTarget {
                    target: k as u32,
                    fault: TargetFault::LvIndexOutOfRange,
                });
                continue;
            };
            let Some(tm) = self.image.modules.get(t.module) else {
                bad.push(DiagKind::UnboundModule {
                    lv_index: k as u32,
                    module: t.module,
                });
                continue;
            };
            if t.ev_index >= tm.nprocs {
                bad.push(DiagKind::UnboundModule {
                    lv_index: k as u32,
                    module: t.module,
                });
                continue;
            }
            let owner = tm.code_of.unwrap_or(t.module);
            match self.d.by_ref.get(&(owner, t.ev_index)) {
                Some(&callee) => {
                    if !pids.contains(&callee) {
                        pids.push(callee);
                    }
                }
                None => bad.push(DiagKind::BadCallTarget {
                    target: k as u32,
                    fault: TargetFault::NotAHeader,
                }),
            }
        }
        if !bad.is_empty() {
            Site::Bad(bad)
        } else if pids.is_empty() {
            Site::Bad(vec![DiagKind::BadCallTarget {
                target: k as u32,
                fault: TargetFault::LvIndexOutOfRange,
            }])
        } else {
            self.arity_checked(pids, k as u32)
        }
    }

    fn resolve_direct(&self, addr: u64) -> Site {
        if addr >= self.image.code.len() as u64 {
            return Site::Bad(vec![DiagKind::BadCallTarget {
                target: addr as u32,
                fault: TargetFault::OutOfRange,
            }]);
        }
        match self.d.by_header.get(&(addr as u32)) {
            Some(&callee) => self.arity_checked(vec![callee], addr as u32),
            None => Site::Bad(vec![DiagKind::BadCallTarget {
                target: addr as u32,
                fault: TargetFault::NotAHeader,
            }]),
        }
    }

    /// Flags `LOADIMM`-fed context creations whose descriptor word
    /// cannot name any procedure in the image.
    fn scan_descriptors(&self, diagnostics: &mut Vec<Diagnostic>) {
        for (pid, p) in self.d.procs.iter().enumerate() {
            for w in p.ops.windows(2) {
                let (off, Instr::LoadImm(word), _) = w[0] else {
                    continue;
                };
                if !matches!(w[1].1, Instr::NewContext | Instr::Spawn) {
                    continue;
                }
                if self.resolve_descriptor(word).is_none() {
                    diagnostics.push(self.diag(pid, off, DiagKind::BadDescriptor { word }));
                }
            }
        }
    }

    /// Inverts a packed procedure-descriptor word back to a proc id.
    fn resolve_descriptor(&self, word: u16) -> Option<usize> {
        let Context::Proc(p) = Context::from(ContextWord::from_raw(word)) else {
            return None;
        };
        let env = p.env().get();
        let code = p.code().get() as u16;
        for (mi, m) in self.image.modules.iter().enumerate() {
            let base = self.image.gft_base(mi);
            let n = gft_entries_for(m.nprocs);
            if env >= base && env < base + n {
                let ev = (env - base) * 32 + code;
                if ev >= m.nprocs {
                    return None;
                }
                let owner = m.code_of.unwrap_or(mi);
                return self.d.by_ref.get(&(owner, ev)).copied();
            }
        }
        None
    }

    /// Optimistic fixpoint over return arities: procedures start as
    /// `Bottom` ("never returns"), so calls into not-yet-proven
    /// callees do not poison their callers; each round re-analyses
    /// every body under the current assumptions. The lattice has
    /// height two per procedure, so the loop is linearly bounded.
    fn arity_fixpoint(&mut self) {
        let n = self.d.procs.len();
        for _round in 0..(2 * n + 2) {
            let mut changed = false;
            for pid in 0..n {
                let (_, ret, _) = self.dataflow(pid);
                let joined = self.arity[pid].join(ret);
                if joined != self.arity[pid] {
                    self.arity[pid] = joined;
                    changed = true;
                }
            }
            if !changed {
                return;
            }
        }
        debug_assert!(false, "arity fixpoint did not converge");
    }

    /// One op's transfer function at interval `(lo, hi)`.
    fn step(&self, pid: usize, idx: usize, lo: u32, hi: u32) -> Step {
        let p = &self.d.procs[pid];
        let (off, instr, len) = p.ops[idx];
        let mut diags = Vec::new();
        let mut succs = Vec::new();
        let mut ret = None;
        let mut reach = hi;

        if let Some(slot) = local_slot(instr) {
            if p.capacity > 0 && slot >= p.capacity {
                diags.push(DiagKind::SizeClassMismatch {
                    fsi: p.fsi,
                    capacity: p.capacity,
                    slot,
                });
            }
        }

        // Fallthrough helper: the next linear offset is the next op,
        // the opaque tail, or the body end.
        let fall = |interval: (u32, u32), diags: &mut Vec<DiagKind>, succs: &mut Vec<_>| {
            let next = off + len as u32;
            if let Some(&i) = p.bounds.get(&next) {
                succs.push((i, interval));
            } else if p.opaque == Some(next) {
                diags.push(DiagKind::Undecodable { at: next });
            } else {
                diags.push(DiagKind::FallsOffEnd);
            }
        };
        // Jump-edge helper: targets must be decoded boundaries inside
        // the body; inside a fused pair's span only the pair's ops
        // themselves are legal entries.
        let jump =
            |target: i64, interval: (u32, u32), diags: &mut Vec<DiagKind>, succs: &mut Vec<_>| {
                if target < p.body_start as i64 || target >= p.body_end as i64 {
                    diags.push(DiagKind::JumpOutOfBody { target });
                    return;
                }
                let t = target as u32;
                if let Some(&i) = p.bounds.get(&t) {
                    succs.push((i, interval));
                } else if p.opaque.is_some_and(|o| t >= o) {
                    diags.push(DiagKind::Undecodable { at: t });
                } else {
                    diags.push(DiagKind::MidInstructionJump {
                        target: t,
                        in_fused_pair: p.inside_fused_pair(t),
                    });
                }
            };

        match instr {
            Instr::Jump(d) => jump(off as i64 + d as i64, (lo, hi), &mut diags, &mut succs),
            Instr::JumpZero(d) | Instr::JumpNotZero(d) => {
                if lo < 1 {
                    diags.push(DiagKind::StackUnderflow { depth: lo, pops: 1 });
                } else {
                    let after = (lo - 1, hi - 1);
                    jump(off as i64 + d as i64, after, &mut diags, &mut succs);
                    fall(after, &mut diags, &mut succs);
                }
            }
            Instr::LocalCall(_)
            | Instr::ExternalCall(_)
            | Instr::DirectCall(_)
            | Instr::ShortDirectCall(_) => match self.sites[pid].get(&idx) {
                Some(Site::Procs(targets)) => {
                    let nargs = self.d.procs[targets[0]].nargs;
                    if lo != hi || lo != nargs {
                        diags.push(DiagKind::CallDepthMismatch { lo, hi, nargs });
                    } else {
                        let joined = targets
                            .iter()
                            .fold(Arity::Bottom, |a, &t| a.join(self.arity[t]));
                        match joined {
                            // Never returns: the call is terminal.
                            Arity::Bottom => {}
                            Arity::Known(r) => {
                                if r > self.limit {
                                    diags.push(DiagKind::StackOverflow {
                                        depth: r,
                                        limit: self.limit,
                                    });
                                } else {
                                    reach = reach.max(r);
                                    fall((r, r), &mut diags, &mut succs);
                                }
                            }
                            // The callee's own RETs carry the
                            // inconsistency diagnostic; this path just
                            // stops.
                            Arity::Conflict => {}
                        }
                    }
                }
                // Already diagnosed at resolution; path ends.
                Some(Site::Bad(_)) => {}
                None => unreachable!("call instructions always get a site entry"),
            },
            Instr::Ret => {
                ret = Some((lo, hi));
                if lo != hi {
                    diags.push(DiagKind::InconsistentReturnArity {
                        first: lo,
                        second: hi,
                    });
                }
            }
            Instr::Xfer => {
                // Single-word transfer-record protocol: destination
                // context on top, at most one transferred value below;
                // the partner's transfer leaves exactly one value.
                if lo < 1 || hi > 2 {
                    diags.push(DiagKind::XferDepth { lo, hi });
                } else {
                    fall((1, 1), &mut diags, &mut succs);
                }
            }
            Instr::Trap(_) | Instr::Halt => {}
            _ => {
                let (pops, pushes) = effect(instr).expect("control ops matched above");
                if lo < pops {
                    diags.push(DiagKind::StackUnderflow { depth: lo, pops });
                } else {
                    let (alo, ahi) = (lo - pops + pushes, hi - pops + pushes);
                    if ahi > self.limit {
                        diags.push(DiagKind::StackOverflow {
                            depth: ahi,
                            limit: self.limit,
                        });
                    } else {
                        reach = reach.max(ahi);
                        fall((alo, ahi), &mut diags, &mut succs);
                    }
                }
            }
        }
        Step {
            succs,
            diags,
            ret,
            reach,
        }
    }

    /// Runs the worklist dataflow over one body. Returns the fixpoint
    /// states (entry interval per op), the joined return arity, and
    /// the maximum attainable depth.
    fn dataflow(&self, pid: usize) -> (OpStates, Arity, Option<u32>) {
        let p = &self.d.procs[pid];
        let entry = if self.image.bank_args { 0 } else { p.nargs };
        let mut state: Vec<Option<(u32, u32)>> = vec![None; p.ops.len()];
        let mut max_depth = None;
        if p.ops.is_empty() {
            return (state, Arity::Bottom, max_depth);
        }
        if entry > self.limit {
            // Entry alone overflows; the body is never soundly
            // enterable, so nothing further is provable.
            return (state, Arity::Bottom, Some(entry));
        }
        max_depth = Some(entry);
        state[0] = Some((entry, entry));
        let mut wl = VecDeque::from([0usize]);
        let mut ret = Arity::Bottom;
        while let Some(idx) = wl.pop_front() {
            let (lo, hi) = state[idx].expect("queued ops have state");
            let step = self.step(pid, idx, lo, hi);
            max_depth = Some(max_depth.unwrap_or(0).max(step.reach));
            if let Some((rlo, rhi)) = step.ret {
                ret = ret.join(if rlo == rhi {
                    Arity::Known(rlo)
                } else {
                    Arity::Conflict
                });
            }
            for (succ, (slo, shi)) in step.succs {
                let joined = match state[succ] {
                    None => (slo, shi),
                    Some((olo, ohi)) => (olo.min(slo), ohi.max(shi)),
                };
                if state[succ] != Some(joined) {
                    state[succ] = Some(joined);
                    wl.push_back(succ);
                }
            }
        }
        (state, ret, max_depth)
    }

    /// The final pass: dataflow once more under the fixpoint arities,
    /// then sweep every reachable op emitting diagnostics from the
    /// settled states, and assemble the report.
    fn final_pass(&mut self, mut diagnostics: Vec<Diagnostic>) -> VerifyReport {
        let n = self.d.procs.len();
        let mut summaries = Vec::with_capacity(n);
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut intra: Vec<EffectSummary> = vec![EffectSummary::default(); n];
        let mut safe_points: Vec<Vec<u32>> = vec![Vec::new(); n];
        // Dead-store evidence, keyed by code segment (an instance runs
        // its owner's code, so reads through any sharing frame count).
        let mut seg_reads: HashMap<usize, HashSet<u32>> = HashMap::new();
        let mut seg_exposed: HashSet<usize> = HashSet::new();
        let mut global_stores: Vec<(usize, u32, usize, u32)> = Vec::new();
        let mut indirect_reads = false;
        for (pid, out_edges) in edges.iter_mut().enumerate() {
            let p = &self.d.procs[pid];
            let (state, ret, max_depth) = self.dataflow(pid);
            // Entry-point structural problems the dataflow cannot even
            // start on.
            if p.ops.is_empty() {
                if p.opaque == Some(p.body_start) {
                    diagnostics.push(self.diag(
                        pid,
                        p.body_start,
                        DiagKind::Undecodable { at: p.body_start },
                    ));
                } else {
                    diagnostics.push(self.diag(pid, p.body_start, DiagKind::FallsOffEnd));
                }
            } else if !self.image.bank_args && p.nargs > self.limit {
                diagnostics.push(self.diag(
                    pid,
                    p.body_start,
                    DiagKind::StackOverflow {
                        depth: p.nargs,
                        limit: self.limit,
                    },
                ));
            }
            let mut ret_seen: Option<u32> = None;
            let mut in_dead_run = false;
            for (idx, st) in state.iter().enumerate() {
                let Some((lo, hi)) = *st else {
                    // Flag the head of each contiguous unreachable run
                    // (only when the body itself was analysable).
                    if !in_dead_run && state[0].is_some() {
                        let at = p.ops[idx].0;
                        diagnostics.push(self.diag(pid, at, DiagKind::UnreachableCode { at }));
                    }
                    in_dead_run = true;
                    continue;
                };
                in_dead_run = false;
                let step = self.step(pid, idx, lo, hi);
                let off = p.ops[idx].0;
                for kind in step.diags {
                    diagnostics.push(self.diag(pid, off, kind));
                }
                let instr = p.ops[idx].1;
                intra[pid].record(instr, p.seg);
                if self.remote[pid].contains(&idx) {
                    // A parked marshal rewinds the pc onto the call, so
                    // the seam itself is never a migration point.
                    intra[pid].record_remote_site(off);
                } else if lo == hi && lo <= XFER_RESIDUE_WORDS {
                    safe_points[pid].push(off);
                }
                match instr {
                    Instr::LoadGlobal(s) => {
                        seg_reads.entry(p.seg).or_default().insert(s as u32);
                    }
                    Instr::StoreGlobal(s) => global_stores.push((pid, off, p.seg, s as u32)),
                    Instr::LoadGlobalAddr(_) => {
                        seg_exposed.insert(p.seg);
                    }
                    Instr::Read | Instr::LoadIndex => indirect_reads = true,
                    _ => {}
                }
                if let Some((rlo, rhi)) = step.ret {
                    if rlo == rhi {
                        if let Some(first) = ret_seen {
                            if first != rlo {
                                diagnostics.push(self.diag(
                                    pid,
                                    off,
                                    DiagKind::InconsistentReturnArity { first, second: rlo },
                                ));
                            }
                        } else {
                            ret_seen = Some(rlo);
                        }
                    }
                }
                // Call edges for the graph: only reachable resolved
                // sites.
                if let Some(Site::Procs(targets)) = self.sites[pid].get(&idx) {
                    for &t in targets {
                        if !out_edges.contains(&t) {
                            out_edges.push(t);
                        }
                    }
                }
            }
            summaries.push(ProcSummary {
                module: p.seg,
                ev_index: p.ev_index,
                header: p.header,
                nargs: p.nargs,
                fsi: p.fsi,
                max_stack: max_depth,
                ret_arity: match ret {
                    Arity::Known(r) => Some(r),
                    _ => None,
                },
                calls: Vec::new(),
            });
        }
        for (pid, e) in edges.iter().enumerate() {
            summaries[pid].calls = e.clone();
        }

        let cycles = find_cycles(&edges);
        let mut cyclic = vec![false; n];
        for c in &cycles {
            for &pid in c {
                cyclic[pid] = true;
            }
        }
        let effects = solve(&intra, &edges, &cyclic);
        // A stored slot never loaded through its segment is a dead
        // store — but only when no alias channel could read it: no
        // indirect reads anywhere in the image, and the segment never
        // takes a global's address.
        if !indirect_reads {
            for &(pid, off, seg, slot) in &global_stores {
                if !seg_exposed.contains(&seg)
                    && !seg_reads.get(&seg).is_some_and(|s| s.contains(&slot))
                {
                    diagnostics.push(self.diag(pid, off, DiagKind::DeadStore { slot }));
                }
            }
        }
        let frame_bound = self.frame_bound(&edges, &cycles);
        VerifyReport {
            diagnostics,
            procs: summaries,
            cycles,
            stack_limit: self.limit,
            xfer_residue: self.residue,
            fused_pairs: self.d.fused_pairs,
            frame_words_bound: frame_bound,
            effects,
            safe_points,
        }
    }

    /// Longest-chain frame-words bound from the entry procedure over
    /// the resolved call graph; `None` when a cycle is reachable from
    /// the entry (recursion depth is data-dependent) or the entry is
    /// unknown.
    fn frame_bound(&self, edges: &[Vec<usize>], cycles: &[Cycle]) -> Option<u32> {
        let entry_owner = {
            let e = self.image.entry;
            let m = self.image.modules.get(e.module)?;
            (m.code_of.unwrap_or(e.module), e.ev_index)
        };
        let &entry = self.d.by_ref.get(&entry_owner)?;
        let mut cyclic = vec![false; self.d.procs.len()];
        for c in cycles {
            for &pid in c {
                cyclic[pid] = true;
            }
        }
        // Memoised DFS over the DAG; a cyclic node reachable from the
        // entry voids the bound.
        fn cost(
            pid: usize,
            edges: &[Vec<usize>],
            cyclic: &[bool],
            frame: &dyn Fn(usize) -> u32,
            memo: &mut [Option<Option<u32>>],
        ) -> Option<u32> {
            if cyclic[pid] {
                return None;
            }
            if let Some(m) = memo[pid] {
                return m;
            }
            let mut deepest = 0;
            let mut r = Some(());
            for &t in &edges[pid] {
                match cost(t, edges, cyclic, frame, memo) {
                    Some(c) => deepest = deepest.max(c),
                    None => {
                        r = None;
                        break;
                    }
                }
            }
            let out = r.map(|()| frame(pid) + deepest);
            memo[pid] = Some(out);
            out
        }
        let classes = &self.image.classes;
        let procs = &self.d.procs;
        let frame = |pid: usize| -> u32 {
            let fsi = procs[pid].fsi;
            if (fsi as usize) < classes.len() {
                classes.size_of(fsi)
            } else {
                0
            }
        };
        let mut memo = vec![None; self.d.procs.len()];
        cost(entry, edges, &cyclic, &frame, &mut memo)
    }
}

/// Tarjan strongly-connected components; returns components that are
/// actual cycles (size > 1, or a self-loop).
fn find_cycles(edges: &[Vec<usize>]) -> Vec<Cycle> {
    struct T<'a> {
        edges: &'a [Vec<usize>],
        index: Vec<Option<u32>>,
        low: Vec<u32>,
        on: Vec<bool>,
        stack: Vec<usize>,
        next: u32,
        out: Vec<Cycle>,
    }
    fn strong(t: &mut T, v: usize) {
        t.index[v] = Some(t.next);
        t.low[v] = t.next;
        t.next += 1;
        t.stack.push(v);
        t.on[v] = true;
        for i in 0..t.edges[v].len() {
            let w = t.edges[v][i];
            if t.index[w].is_none() {
                strong(t, w);
                t.low[v] = t.low[v].min(t.low[w]);
            } else if t.on[w] {
                t.low[v] = t.low[v].min(t.index[w].unwrap());
            }
        }
        if Some(t.low[v]) == t.index[v] {
            let mut comp = Vec::new();
            loop {
                let w = t.stack.pop().expect("tarjan stack");
                t.on[w] = false;
                comp.push(w);
                if w == v {
                    break;
                }
            }
            comp.reverse();
            if comp.len() > 1 || t.edges[v].contains(&v) {
                t.out.push(comp);
            }
        }
    }
    let n = edges.len();
    let mut t = T {
        edges,
        index: vec![None; n],
        low: vec![0; n],
        on: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if t.index[v].is_none() {
            strong(&mut t, v);
        }
    }
    t.out
}
