//! Procedure discovery: entry vectors → headers → decoded bodies.
//!
//! Mirrors the VM's predecode body enumeration exactly — the stops are
//! segment bases (entry vectors are data), every procedure header, and
//! the end of the code store — so the verifier reasons about the same
//! instruction stream the machine will execute, fused pairs included.

use std::collections::HashMap;

use fpc_core::layout;
use fpc_isa::{decode, Instr};
use fpc_vm::{fuse_pair, Image};

use crate::report::{DiagKind, Diagnostic};

/// One discovered procedure and its decoded body.
#[derive(Debug)]
pub(crate) struct ProcInfo {
    /// Code-owning module index (instances share the owner's bodies).
    pub seg: usize,
    /// Entry-vector index within the owner.
    pub ev_index: u16,
    /// Header byte address.
    pub header: u32,
    /// First body byte (header end).
    pub body_start: u32,
    /// One past the last body byte (next stop).
    pub body_end: u32,
    /// Declared frame-size class index.
    pub fsi: u8,
    /// Declared argument count.
    pub nargs: u32,
    /// Local slots the size class provides (0 when `fsi` is bad).
    pub capacity: u32,
    /// Linear decode of the body: `(absolute offset, instr, len)`.
    pub ops: Vec<(u32, Instr, u8)>,
    /// Absolute offset → index into `ops`. Every entry is a legal
    /// transfer target, including the second op of a fused pair (the
    /// VM keeps a singleton map entry for it).
    pub bounds: HashMap<u32, usize>,
    /// First absolute offset where linear decoding failed (trailing
    /// padding or genuinely opaque bytes), if any. Only an error when
    /// reachable.
    pub opaque: Option<u32>,
    /// Fused superinstruction pairs under the VM's greedy pairing:
    /// `(span start, span end, second op offset)`.
    pub pairs: Vec<(u32, u32, u32)>,
}

impl ProcInfo {
    /// Whether `off` falls strictly inside a fused pair's byte span
    /// without being an op boundary (the mid-superinstruction case).
    pub fn inside_fused_pair(&self, off: u32) -> bool {
        self.pairs
            .iter()
            .any(|&(start, end, _)| off > start && off < end)
    }
}

/// The discovery result: procedures, lookup tables and structural
/// diagnostics.
pub(crate) struct Discovery {
    pub procs: Vec<ProcInfo>,
    /// Header byte address → proc id, for direct-call resolution.
    pub by_header: HashMap<u32, usize>,
    /// `(owner module, ev index)` → proc id.
    pub by_ref: HashMap<(usize, u16), usize>,
    pub diagnostics: Vec<Diagnostic>,
    /// Total fused pairs across all bodies.
    pub fused_pairs: usize,
}

fn structural(image: &Image, module: usize, ev: u16, pc: u32, kind: DiagKind) -> Diagnostic {
    Diagnostic {
        module,
        module_name: image.modules[module].name.clone(),
        ev_index: ev,
        pc,
        rendered: String::new(),
        kind,
    }
}

/// Walks every owner module's entry vector, reads and validates the
/// headers, and decodes each body once.
pub(crate) fn discover(image: &Image) -> Discovery {
    let code_len = image.code.len() as u32;
    // Stops, exactly as the VM's predecode walk computes them.
    let mut headers: Vec<(usize, u16, u32)> = Vec::new();
    let mut diagnostics = Vec::new();
    for (mi, m) in image.modules.iter().enumerate() {
        if m.code_of.is_some() {
            continue; // instances share the owner's headers
        }
        for p in 0..m.nprocs {
            let slot = layout::ev_slot(m.code_base, p).0;
            if slot + 1 >= code_len {
                diagnostics.push(structural(
                    image,
                    mi,
                    p,
                    slot,
                    DiagKind::BadEntry {
                        reason: format!("entry-vector slot {p} is outside the code store"),
                    },
                ));
                continue;
            }
            let rel =
                u16::from_le_bytes([image.code[slot as usize], image.code[slot as usize + 1]]);
            headers.push((mi, p, m.code_base.0 + rel as u32));
        }
    }
    let mut stops: Vec<u32> = image.modules.iter().map(|m| m.code_base.0).collect();
    stops.extend(headers.iter().map(|&(_, _, h)| h));
    stops.push(code_len);
    stops.sort_unstable();
    stops.dedup();

    let mut procs = Vec::new();
    let mut by_header = HashMap::new();
    let mut by_ref = HashMap::new();
    let mut fused_pairs = 0;
    for (mi, ev, header) in headers {
        if header + layout::PROC_HEADER_BYTES > code_len {
            diagnostics.push(structural(
                image,
                mi,
                ev,
                header,
                DiagKind::BadEntry {
                    reason: "procedure header runs past the code store".into(),
                },
            ));
            continue;
        }
        let fsi = image.code[header as usize + layout::HDR_FSI as usize];
        let flags = image.code[header as usize + layout::HDR_FLAGS as usize];
        let (nargs, _addr_taken) = layout::unpack_flags(flags);
        let capacity = if (fsi as usize) < image.classes.len() {
            image
                .classes
                .size_of(fsi)
                .saturating_sub(layout::FRAME_HEADER_WORDS)
        } else {
            diagnostics.push(structural(
                image,
                mi,
                ev,
                header,
                DiagKind::BadSizeClass { fsi },
            ));
            0
        };
        if capacity > 0 && nargs as u32 > capacity {
            diagnostics.push(structural(
                image,
                mi,
                ev,
                header,
                DiagKind::SizeClassMismatch {
                    fsi,
                    capacity,
                    slot: (nargs as u32).saturating_sub(1),
                },
            ));
        }
        let body_start = header + layout::PROC_HEADER_BYTES;
        let body_end = stops
            .iter()
            .copied()
            .find(|&s| s >= body_start)
            .unwrap_or(code_len);

        // Linear decode, stopping at the first undecodable byte — the
        // same straight-line run the predecode walk translates.
        let mut ops: Vec<(u32, Instr, u8)> = Vec::new();
        let mut bounds = HashMap::new();
        let mut opaque = None;
        let mut at = body_start;
        while at < body_end {
            match decode(&image.code, at as usize) {
                Ok((instr, len)) => {
                    bounds.insert(at, ops.len());
                    ops.push((at, instr, len as u8));
                    at += len as u32;
                }
                Err(_) => {
                    opaque = Some(at);
                    break;
                }
            }
        }

        // Mirror the VM's greedy left-to-right pairing.
        let mut pairs = Vec::new();
        let mut i = 0;
        while i + 1 < ops.len() {
            let (oa, a, la) = ops[i];
            let (ob, b, lb) = ops[i + 1];
            if fuse_pair(a, b, la, lb).is_some() {
                pairs.push((oa, ob + lb as u32, ob));
                i += 2;
            } else {
                i += 1;
            }
        }
        fused_pairs += pairs.len();

        let pid = procs.len();
        by_header.insert(header, pid);
        by_ref.insert((mi, ev), pid);
        procs.push(ProcInfo {
            seg: mi,
            ev_index: ev,
            header,
            body_start,
            body_end,
            fsi,
            nargs: nargs as u32,
            capacity,
            ops,
            bounds,
            opaque,
            pairs,
        });
    }
    Discovery {
        procs,
        by_header,
        by_ref,
        diagnostics,
        fused_pairs,
    }
}
