//! Name resolution and shape checking.
//!
//! Mesa-lite is weakly typed in the BCPL tradition — every scalar is a
//! 16-bit word — so "checking" here means: names resolve, call arities
//! match, arrays are not used as scalars, returns agree with
//! signatures, and the various encoding limits hold (≤ 63 parameters,
//! ≤ 256 entry points per module, global offsets within a byte).

use std::collections::HashMap;

use crate::ast::*;
use crate::error::{CompileError, Phase};

/// A module's global variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalSlot {
    /// Word offset within the global variables area.
    pub offset: u8,
    /// Declared type.
    pub ty: Type,
}

/// A procedure signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcSig {
    /// Name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type, if any.
    pub ret: Option<Type>,
    /// Entry-vector index.
    pub ev: u16,
    /// Whether the procedure takes addresses of locals or declares
    /// local arrays (both compile to `LLA`) — the §7.4 header flag.
    pub addr_taken: bool,
}

/// Resolved facts about one module.
#[derive(Debug, Clone)]
pub struct ModuleInfo {
    /// Module name.
    pub name: String,
    /// Globals by name.
    pub globals: HashMap<String, GlobalSlot>,
    /// Total global words.
    pub globals_words: u32,
    /// Procedures in entry-vector order.
    pub procs: Vec<ProcSig>,
    /// Procedure name → entry-vector index.
    pub proc_index: HashMap<String, usize>,
    /// Imported module indices.
    pub imports: Vec<usize>,
    /// `Some(owner)` when this entry is an instance of another module
    /// (same code, own globals — §5.1).
    pub instance_of: Option<usize>,
    /// For instances: the module whose source declared them (the only
    /// place the instance name is visible).
    pub declared_in: Option<usize>,
}

/// The resolved program.
#[derive(Debug, Clone)]
pub struct ProgramInfo {
    /// Per-module facts, in input order.
    pub modules: Vec<ModuleInfo>,
    /// Module name → index.
    pub by_name: HashMap<String, usize>,
    /// `(module, ev)` of the unique `main`.
    pub main: (usize, u16),
}

impl ProgramInfo {
    /// Resolves a possibly-qualified procedure name from the viewpoint
    /// of module `from`.
    ///
    /// # Errors
    ///
    /// [`CompileError`] for unknown modules/procedures or modules not
    /// imported.
    pub fn resolve(&self, from: usize, target: &ProcName) -> Result<(usize, usize), CompileError> {
        let err = |msg: String| CompileError::new(Phase::Sema, Some(target.line), msg);
        let (mi, name) = match &target.module {
            None => (from, &target.name),
            Some(m) => {
                let &mi = self
                    .by_name
                    .get(m)
                    .ok_or_else(|| err(format!("unknown module `{m}`")))?;
                let visible = mi == from
                    || self.modules[from].imports.contains(&mi)
                    || self.modules[mi].declared_in == Some(from);
                if !visible {
                    return Err(err(format!(
                        "module `{}` does not import `{m}`",
                        self.modules[from].name
                    )));
                }
                (mi, &target.name)
            }
        };
        let pi = self.modules[mi]
            .proc_index
            .get(name)
            .copied()
            .ok_or_else(|| {
                err(format!(
                    "unknown procedure `{}` in module `{}`",
                    name, self.modules[mi].name
                ))
            })?;
        Ok((mi, pi))
    }

    /// The signature of `(module, proc)`.
    pub fn sig(&self, module: usize, proc: usize) -> &ProcSig {
        &self.modules[module].procs[proc]
    }
}

/// Maximum parameters (the header flags byte limit).
pub const MAX_PARAMS: usize = 63;
/// Maximum entry points per module (the `LFCB` operand range).
pub const MAX_PROCS: usize = 256;
/// Maximum global word offset (the `LG`/`LGA` operand range).
pub const MAX_GLOBAL_OFFSET: u32 = 255;
/// Maximum local slot (the `LLB` operand range).
pub const MAX_LOCAL_SLOT: u32 = 255;

/// Analyses a parsed program.
///
/// # Errors
///
/// The first [`CompileError`] found.
pub fn analyze(modules: &[Module]) -> Result<ProgramInfo, CompileError> {
    let err = |line: u32, msg: String| CompileError::new(Phase::Sema, Some(line), msg);

    // Pass 1: module-level tables.
    let mut by_name = HashMap::new();
    for (i, m) in modules.iter().enumerate() {
        if by_name.insert(m.name.clone(), i).is_some() {
            return Err(err(m.line, format!("duplicate module `{}`", m.name)));
        }
    }
    let mut infos = Vec::with_capacity(modules.len());
    for m in modules {
        let mut globals = HashMap::new();
        let mut offset = 0u32;
        for g in &m.globals {
            if offset > MAX_GLOBAL_OFFSET {
                return Err(err(
                    g.line,
                    format!("global `{}` beyond word offset 255", g.name),
                ));
            }
            if globals
                .insert(
                    g.name.clone(),
                    GlobalSlot {
                        offset: offset as u8,
                        ty: g.ty,
                    },
                )
                .is_some()
            {
                return Err(err(g.line, format!("duplicate global `{}`", g.name)));
            }
            offset += g.ty.words();
        }
        if m.procs.len() > MAX_PROCS {
            return Err(err(
                m.line,
                format!("module `{}` has more than 256 procedures", m.name),
            ));
        }
        let mut procs = Vec::new();
        let mut proc_index = HashMap::new();
        for (pi, p) in m.procs.iter().enumerate() {
            if p.params.len() > MAX_PARAMS {
                return Err(err(
                    p.line,
                    format!("`{}` has more than 63 parameters", p.name),
                ));
            }
            if proc_index.insert(p.name.clone(), pi).is_some() {
                return Err(err(p.line, format!("duplicate procedure `{}`", p.name)));
            }
            let addr_taken =
                p.locals.iter().any(|l| !l.ty.is_scalar()) || body_takes_local_addrs(p, &p.body);
            procs.push(ProcSig {
                name: p.name.clone(),
                params: p.params.iter().map(|v| v.ty).collect(),
                ret: p.ret,
                ev: pi as u16,
                addr_taken,
            });
        }
        let imports = m
            .imports
            .iter()
            .map(|name| {
                by_name
                    .get(name)
                    .copied()
                    .ok_or_else(|| err(m.line, format!("unknown import `{name}`")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        infos.push(ModuleInfo {
            name: m.name.clone(),
            globals,
            globals_words: offset,
            procs,
            proc_index,
            imports,
            instance_of: None,
            declared_in: None,
        });
    }

    // Instance declarations become additional ModuleInfo entries
    // appended after the real modules, sharing the owner's procedures
    // and global layout but naming a fresh global frame (§5.1).
    for (mi, m) in modules.iter().enumerate() {
        for inst in &m.instances {
            if by_name.contains_key(&inst.name) {
                return Err(err(inst.line, format!("duplicate module `{}`", inst.name)));
            }
            let &owner = by_name.get(&inst.of).ok_or_else(|| {
                err(
                    inst.line,
                    format!("unknown module `{}` in instance", inst.of),
                )
            })?;
            if infos[owner].instance_of.is_some() {
                return Err(err(
                    inst.line,
                    format!(
                        "`{}` is itself an instance; instantiate `{}`'s owner",
                        inst.of, inst.of
                    ),
                ));
            }
            let mut clone = infos[owner].clone();
            clone.name = inst.name.clone();
            clone.instance_of = Some(owner);
            clone.declared_in = Some(mi);
            by_name.insert(inst.name.clone(), infos.len());
            infos.push(clone);
        }
    }

    // Find main (instances share their owner's procedures and do not
    // contribute additional mains).
    let mut main = None;
    for (mi, info) in infos.iter().enumerate() {
        if info.instance_of.is_some() {
            continue;
        }
        if let Some(&pi) = info.proc_index.get("main") {
            if main.is_some() {
                return Err(err(modules[mi].line, "more than one `main`".into()));
            }
            if !info.procs[pi].params.is_empty() {
                return Err(err(
                    modules[mi].procs[pi].line,
                    "`main` takes no parameters".into(),
                ));
            }
            main = Some((mi, pi as u16));
        }
    }
    let main = main
        .ok_or_else(|| CompileError::new(Phase::Sema, None, "no `main` procedure in any module"))?;

    let info = ProgramInfo {
        modules: infos,
        by_name,
        main,
    };

    // Pass 2: walk bodies.
    for (mi, m) in modules.iter().enumerate() {
        for p in &m.procs {
            let mut ck = Checker::new(&info, mi, p)?;
            ck.stmts(&p.body)?;
        }
    }
    Ok(info)
}

fn body_takes_local_addrs(p: &ProcDecl, body: &[Stmt]) -> bool {
    let local_names: Vec<&str> = p
        .params
        .iter()
        .chain(&p.locals)
        .map(|v| v.name.as_str())
        .collect();
    fn expr_has(e: &Expr, locals: &[&str]) -> bool {
        match e {
            Expr::AddrOf { name, index, .. } => {
                locals.contains(&name.as_str())
                    || index.as_ref().is_some_and(|i| expr_has(i, locals))
            }
            Expr::Unary { expr, .. } | Expr::Deref(expr) | Expr::CoStart(expr) => {
                expr_has(expr, locals)
            }
            Expr::Binary { lhs, rhs, .. } => expr_has(lhs, locals) || expr_has(rhs, locals),
            Expr::Index { index, .. } => expr_has(index, locals),
            Expr::Call(c) => c.args.iter().any(|a| expr_has(a, locals)),
            Expr::CoTransfer { ctx, value } => expr_has(ctx, locals) || expr_has(value, locals),
            _ => false,
        }
    }
    fn stmt_has(s: &Stmt, locals: &[&str]) -> bool {
        match s {
            Stmt::Assign { value, .. }
            | Stmt::Out(value)
            | Stmt::CoFree(value)
            | Stmt::Expr(value) => expr_has(value, locals),
            Stmt::StoreIndex { index, value, .. } => {
                expr_has(index, locals) || expr_has(value, locals)
            }
            Stmt::StoreThrough { ptr, value, .. } => {
                expr_has(ptr, locals) || expr_has(value, locals)
            }
            Stmt::If { arms, els } => {
                arms.iter()
                    .any(|(c, b)| expr_has(c, locals) || b.iter().any(|s| stmt_has(s, locals)))
                    || els.iter().any(|s| stmt_has(s, locals))
            }
            Stmt::While { cond, body } => {
                expr_has(cond, locals) || body.iter().any(|s| stmt_has(s, locals))
            }
            Stmt::Return { value, .. } => value.as_ref().is_some_and(|v| expr_has(v, locals)),
            Stmt::Call(c) => c.args.iter().any(|a| expr_has(a, locals)),
            Stmt::Halt | Stmt::Yield => false,
        }
    }
    body.iter().any(|s| stmt_has(s, &local_names))
}

/// What a name refers to inside a procedure body.
#[derive(Debug, Clone, Copy)]
enum Binding {
    Local(Type),
    Global(Type),
}

struct Checker<'a> {
    info: &'a ProgramInfo,
    module: usize,
    ret: Option<Type>,
    scope: HashMap<&'a str, Binding>,
}

impl<'a> Checker<'a> {
    fn new(info: &'a ProgramInfo, module: usize, p: &'a ProcDecl) -> Result<Self, CompileError> {
        let mut scope: HashMap<&str, Binding> = HashMap::new();
        for (name, slot) in &info.modules[module].globals {
            // Borrow global names from the info (same lifetime).
            scope.insert(name.as_str(), Binding::Global(slot.ty));
        }
        let mut slot = 0u32;
        let mut seen = HashMap::new();
        for v in p.params.iter().chain(&p.locals) {
            if seen.insert(&v.name, ()).is_some() {
                return Err(CompileError::new(
                    Phase::Sema,
                    Some(v.line),
                    format!("duplicate local `{}`", v.name),
                ));
            }
            scope.insert(v.name.as_str(), Binding::Local(v.ty));
            slot += v.ty.words();
        }
        if slot > MAX_LOCAL_SLOT {
            return Err(CompileError::new(
                Phase::Sema,
                Some(p.line),
                format!("`{}` needs more than 255 local words", p.name),
            ));
        }
        Ok(Checker {
            info,
            module,
            ret: p.ret,
            scope,
        })
    }

    fn err(&self, line: Option<u32>, msg: String) -> CompileError {
        CompileError::new(Phase::Sema, line, msg)
    }

    fn lookup(&self, name: &str, line: u32) -> Result<Binding, CompileError> {
        self.scope
            .get(name)
            .copied()
            .ok_or_else(|| self.err(Some(line), format!("unknown variable `{name}`")))
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), CompileError> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Assign { name, value, line } => {
                let b = self.lookup(name, *line)?;
                let ty = match b {
                    Binding::Local(t) | Binding::Global(t) => t,
                };
                if !ty.is_scalar() {
                    return Err(self.err(Some(*line), format!("cannot assign to array `{name}`")));
                }
                self.expr(value)
            }
            Stmt::StoreIndex {
                name,
                index,
                value,
                line,
            } => {
                let b = self.lookup(name, *line)?;
                let ty = match b {
                    Binding::Local(t) | Binding::Global(t) => t,
                };
                if !matches!(ty, Type::Array(_) | Type::Ptr) {
                    return Err(self.err(Some(*line), format!("`{name}` is not indexable")));
                }
                self.expr(index)?;
                self.expr(value)
            }
            Stmt::StoreThrough { ptr, value, .. } => {
                self.expr(ptr)?;
                self.expr(value)
            }
            Stmt::If { arms, els } => {
                for (c, b) in arms {
                    self.expr(c)?;
                    self.stmts(b)?;
                }
                self.stmts(els)
            }
            Stmt::While { cond, body } => {
                self.expr(cond)?;
                self.stmts(body)
            }
            Stmt::Return { value, line } => match (self.ret, value) {
                (Some(_), Some(e)) => self.expr(e),
                (None, None) => Ok(()),
                (Some(_), None) => Err(self.err(Some(*line), "missing return value".into())),
                (None, Some(_)) => Err(self.err(Some(*line), "procedure returns no value".into())),
            },
            Stmt::Out(e) | Stmt::CoFree(e) | Stmt::Expr(e) => self.expr(e),
            Stmt::Halt | Stmt::Yield => Ok(()),
            Stmt::Call(c) => self.call(c, false).map(|_| ()),
        }
    }

    /// Checks a call; `need_value` requires a return value.
    fn call(&mut self, c: &CallExpr, need_value: bool) -> Result<(), CompileError> {
        let (mi, pi) = self.info.resolve(self.module, &c.target)?;
        let sig = self.info.sig(mi, pi);
        if sig.params.len() != c.args.len() {
            return Err(self.err(
                Some(c.target.line),
                format!(
                    "`{}` takes {} arguments, {} given",
                    sig.name,
                    sig.params.len(),
                    c.args.len()
                ),
            ));
        }
        if need_value && sig.ret.is_none() {
            return Err(self.err(
                Some(c.target.line),
                format!("`{}` returns no value", sig.name),
            ));
        }
        for a in &c.args {
            self.expr(a)?;
        }
        Ok(())
    }

    fn expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Num(_) | Expr::Bool(_) | Expr::CoCaller => Ok(()),
            Expr::Var { name, line } => {
                let b = self.lookup(name, *line)?;
                let ty = match b {
                    Binding::Local(t) | Binding::Global(t) => t,
                };
                if !ty.is_scalar() {
                    return Err(self.err(
                        Some(*line),
                        format!("array `{name}` used as a value; index it or take `&{name}`"),
                    ));
                }
                Ok(())
            }
            Expr::Index { name, index, line } => {
                let b = self.lookup(name, *line)?;
                let ty = match b {
                    Binding::Local(t) | Binding::Global(t) => t,
                };
                if !matches!(ty, Type::Array(_) | Type::Ptr) {
                    return Err(self.err(Some(*line), format!("`{name}` is not indexable")));
                }
                self.expr(index)
            }
            Expr::Unary { expr, .. } | Expr::Deref(expr) => self.expr(expr),
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs)?;
                self.expr(rhs)
            }
            Expr::Call(c) => self.call(c, true),
            Expr::AddrOf { name, index, line } => {
                let _ = self.lookup(name, *line)?;
                if let Some(i) = index {
                    self.expr(i)?;
                }
                Ok(())
            }
            Expr::CoCreate(p) | Expr::Spawn(p) => {
                let (mi, pi) = self.info.resolve(self.module, p)?;
                let sig = self.info.sig(mi, pi);
                if !sig.params.is_empty() {
                    return Err(self.err(
                        Some(p.line),
                        format!(
                            "`{}` takes parameters; coroutine and process roots take none \
                             (receive values via co_transfer)",
                            sig.name
                        ),
                    ));
                }
                Ok(())
            }
            Expr::CoStart(c) => self.expr(c),
            Expr::CoTransfer { ctx, value } => {
                self.expr(ctx)?;
                self.expr(value)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn analyze_srcs(srcs: &[&str]) -> Result<ProgramInfo, CompileError> {
        let modules: Vec<Module> = srcs.iter().map(|s| parse_module(s).unwrap()).collect();
        analyze(&modules)
    }

    #[test]
    fn resolves_simple_program() {
        let info = analyze_srcs(&["module M; proc main() begin out 1; end; end."]).unwrap();
        assert_eq!(info.main, (0, 0));
        assert_eq!(info.modules[0].procs[0].name, "main");
    }

    #[test]
    fn global_offsets_account_for_arrays() {
        let info = analyze_srcs(&["module M;
             var a: int;
             var t: array[5] of int;
             var b: int;
             proc main() begin b := a; end;
             end."])
        .unwrap();
        let g = &info.modules[0].globals;
        assert_eq!(g["a"].offset, 0);
        assert_eq!(g["t"].offset, 1);
        assert_eq!(g["b"].offset, 6);
        assert_eq!(info.modules[0].globals_words, 7);
    }

    #[test]
    fn cross_module_calls_need_imports() {
        let lib = "module Lib; proc f(): int begin return 1; end; end.";
        let ok = "module M imports Lib; proc main() begin out Lib.f(); end; end.";
        assert!(analyze_srcs(&[lib, ok]).is_ok());
        let bad = "module M; proc main() begin out Lib.f(); end; end.";
        let e = analyze_srcs(&[lib, bad]).unwrap_err();
        assert!(e.to_string().contains("import"), "{e}");
    }

    #[test]
    fn arity_checked() {
        let e = analyze_srcs(&["module M;
             proc f(a: int, b: int): int begin return a + b; end;
             proc main() begin out f(1); end;
             end."])
        .unwrap_err();
        assert!(e.to_string().contains("2 arguments"));
    }

    #[test]
    fn void_call_in_expression_rejected() {
        let e = analyze_srcs(&["module M;
             proc f() begin end;
             proc main() begin out f(); end;
             end."])
        .unwrap_err();
        assert!(e.to_string().contains("returns no value"));
    }

    #[test]
    fn array_as_value_rejected() {
        let e = analyze_srcs(&["module M;
             proc main() var a: array[3] of int; begin out a; end;
             end."])
        .unwrap_err();
        assert!(e.to_string().contains("used as a value"));
    }

    #[test]
    fn unknown_names_rejected() {
        assert!(analyze_srcs(&["module M; proc main() begin out x; end; end."]).is_err());
        assert!(analyze_srcs(&["module M; proc main() begin out g(); end; end."]).is_err());
    }

    #[test]
    fn return_shape_checked() {
        assert!(analyze_srcs(&[
            "module M; proc f(): int begin return; end; proc main() begin end; end."
        ])
        .is_err());
        assert!(analyze_srcs(&[
            "module M; proc f() begin return 1; end; proc main() begin end; end."
        ])
        .is_err());
    }

    #[test]
    fn main_required_and_unique() {
        let e = analyze_srcs(&["module M; proc f() begin end; end."]).unwrap_err();
        assert!(e.to_string().contains("main"));
        let e = analyze_srcs(&[
            "module A; proc main() begin end; end.",
            "module B; proc main() begin end; end.",
        ])
        .unwrap_err();
        assert!(e.to_string().contains("more than one"));
    }

    #[test]
    fn addr_taken_flag_computed() {
        let info = analyze_srcs(&["module M;
             proc plain(x: int): int begin return x; end;
             proc takes() var v: int; begin out *(&v); end;
             proc arr() var a: array[2] of int; begin a[0] := 1; end;
             proc main() begin end;
             end."])
        .unwrap();
        let procs = &info.modules[0].procs;
        assert!(!procs[0].addr_taken);
        assert!(procs[1].addr_taken);
        assert!(procs[2].addr_taken, "local arrays imply LLA");
        assert!(!procs[3].addr_taken);
    }

    #[test]
    fn globals_do_not_set_addr_taken() {
        let info = analyze_srcs(&["module M;
             var t: array[4] of int;
             proc main() begin t[1] := 2; out &t[1]; end;
             end."])
        .unwrap();
        assert!(!info.modules[0].procs[0].addr_taken);
    }

    #[test]
    fn duplicate_locals_rejected() {
        let e = analyze_srcs(&[
            "module M; proc f(x: int) var x: int; begin end; proc main() begin end; end.",
        ])
        .unwrap_err();
        assert!(e.to_string().contains("duplicate local"));
    }
}
