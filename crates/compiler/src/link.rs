//! The linker: assembles modules, places segments, resolves call
//! fixups, and produces a loadable [`Image`].

use fpc_core::layout;
use fpc_frames::SizeClasses;
use fpc_isa::sizing::SizeStats;
use fpc_isa::{disassemble, Assembler};
use fpc_mem::ByteAddr;
use fpc_vm::{Image, ModuleImage, ProcRef};

use crate::ast::Module;
use crate::codegen::{self, CallSiteCounts, FixKind, LvBuilder, Options, ProcCode};
use crate::error::{CompileError, Phase};
use crate::sema::ProgramInfo;

/// Per-procedure frame statistics (experiment E7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameStat {
    /// Module name.
    pub module: String,
    /// Procedure name.
    pub proc: String,
    /// Frame size in words (header + locals + temporaries).
    pub frame_words: u32,
}

impl FrameStat {
    /// Frame size in bytes, the unit of the paper's "95% of all frames
    /// allocated are smaller than 80 bytes".
    pub fn frame_bytes(&self) -> u32 {
        self.frame_words * 2
    }
}

/// Statistics gathered during compilation.
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Encoded-instruction length histogram (experiment E11).
    pub size: SizeStats,
    /// Frame sizes per procedure (experiment E7).
    pub frames: Vec<FrameStat>,
    /// Static spill/reload pairs (the §5.2 cost; experiment E9).
    pub static_spills: u64,
    /// Call sites by linkage (experiment E4).
    pub calls: CallSiteCounts,
    /// Total code bytes, including entry vectors and headers.
    pub code_bytes: u32,
}

/// A compiled program: the loadable image plus statistics.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The linked image.
    pub image: Image,
    /// Compilation statistics.
    pub stats: CompileStats,
}

struct LinkedModule {
    bytes: Vec<u8>,
    header_offsets: Vec<u32>,
    body_ranges: Vec<(u32, u32)>,
    fixup_sites: Vec<(u32, FixKind, (usize, usize))>,
    lv: Vec<ProcRef>,
    globals_words: u32,
    name: String,
}

/// Links an analysed program.
///
/// # Errors
///
/// [`CompileError`] for encoding-limit violations (frame too large,
/// module code over 64 KB, short-direct target out of reach…).
pub fn link(
    modules: &[Module],
    info: &ProgramInfo,
    options: Options,
) -> Result<Compiled, CompileError> {
    let classes = SizeClasses::mesa();
    let lerr = |msg: String| CompileError::new(Phase::Link, None, msg);

    let mut linked = Vec::with_capacity(modules.len());
    let mut stats = CompileStats::default();

    for (mi, m) in modules.iter().enumerate() {
        let mut asm = Assembler::new();
        let nprocs = m.procs.len();
        asm.raw(&vec![0u8; nprocs * 2]); // entry vector, patched below
        let mut lvb = LvBuilder::default();
        let mut codes: Vec<ProcCode> = Vec::with_capacity(nprocs);
        for p in &m.procs {
            let hl = asm.label();
            asm.bind(hl);
            asm.raw(&[0u8; layout::PROC_HEADER_BYTES as usize]);
            let code = codegen::gen_proc(&mut asm, hl, info, mi, p, options, &mut lvb)?;
            codes.push(code);
        }
        let out = asm
            .assemble()
            .map_err(|e| lerr(format!("module `{}`: {e}", m.name)))?;
        let mut bytes = out.bytes.clone();
        if bytes.len() > u16::MAX as usize {
            return Err(lerr(format!("module `{}` exceeds 64 KB of code", m.name)));
        }

        let mut header_offsets = Vec::with_capacity(nprocs);
        let mut body_ranges = Vec::with_capacity(nprocs);
        let mut fixup_sites = Vec::new();
        for (pi, code) in codes.iter().enumerate() {
            let hdr = out.offset_of(code.header_label);
            header_offsets.push(hdr);
            // Entry-vector slot: byte offset of the header.
            bytes[pi * 2] = hdr as u8;
            bytes[pi * 2 + 1] = (hdr >> 8) as u8;
            // Header: fsi, flags (GF and code base are load-time).
            let frame_words = layout::FRAME_HEADER_WORDS + code.nlocals;
            let fsi = classes.fsi_for(frame_words).ok_or_else(|| {
                lerr(format!(
                    "`{}.{}` needs a {frame_words}-word frame, beyond the largest class",
                    m.name, m.procs[pi].name
                ))
            })?;
            bytes[hdr as usize + layout::HDR_FSI as usize] = fsi;
            bytes[hdr as usize + layout::HDR_FLAGS as usize] =
                layout::pack_flags(code.nargs, code.addr_taken);
            body_ranges.push((out.offset_of(code.body_start), out.offset_of(code.body_end)));
            for f in &code.fixups {
                fixup_sites.push((out.offset_of(f.label), f.kind, f.target));
            }
            stats.frames.push(FrameStat {
                module: m.name.clone(),
                proc: m.procs[pi].name.clone(),
                frame_words,
            });
            stats.static_spills += code.spills;
            stats.calls.local += code.calls.local;
            stats.calls.external += code.calls.external;
            stats.calls.direct += code.calls.direct;
            stats.calls.short_direct += code.calls.short_direct;
        }
        linked.push(LinkedModule {
            bytes,
            header_offsets,
            body_ranges,
            fixup_sites,
            lv: lvb
                .targets()
                .iter()
                .map(|&(tm, tp)| ProcRef {
                    module: tm,
                    ev_index: tp as u16,
                })
                .collect(),
            globals_words: info.modules[mi].globals_words,
            name: m.name.clone(),
        });
    }

    // Place segments (word aligned).
    let mut code = Vec::new();
    let mut bases = Vec::with_capacity(linked.len());
    for lm in &linked {
        if code.len() % 2 != 0 {
            code.push(0);
        }
        bases.push(ByteAddr(code.len() as u32));
        code.extend_from_slice(&lm.bytes);
    }

    let mut image_modules: Vec<ModuleImage> = linked
        .iter()
        .zip(&bases)
        .map(|(lm, &base)| ModuleImage {
            name: lm.name.clone(),
            code_base: base,
            nprocs: lm.header_offsets.len() as u16,
            lv: lm.lv.clone(),
            globals: vec![0; lm.globals_words as usize],
            code_of: None,
        })
        .collect();
    // Instance entries follow, in the order sema assigned them, so
    // that sema's module indices and the image's agree.
    for inst in &info.modules[modules.len()..] {
        let owner = inst.instance_of.expect("appended entries are instances");
        let (code_base, nprocs, lv) = {
            let o = &image_modules[owner];
            (o.code_base, o.nprocs, o.lv.clone())
        };
        image_modules.push(ModuleImage {
            name: inst.name.clone(),
            code_base,
            nprocs,
            lv,
            globals: vec![0; inst.globals_words as usize],
            code_of: Some(owner),
        });
    }

    let mut image = Image {
        code,
        modules: image_modules,
        entry: ProcRef {
            module: info.main.0,
            ev_index: info.main.1,
        },
        classes,
        bank_args: options.bank_args,
        // The Mesa-lite language has no remote-import syntax yet;
        // remote descriptors enter images through
        // `ImageBuilder::import_remote` or host-side registration.
        remote_imports: Vec::new(),
    };

    // Apply fixups now that every header has an absolute address.
    for (mi, lm) in linked.iter().enumerate() {
        for &(site_rel, kind, (tm, tp)) in &lm.fixup_sites {
            let site = bases[mi].0 + site_rel;
            // A direct call to an instance can only reach the code —
            // whose header binds the owning instance's environment
            // (the paper's D2); resolve to the owner's header.
            let phys = info.modules[tm].instance_of.unwrap_or(tm);
            let target = bases[phys].0 + linked[phys].header_offsets[tp];
            match kind {
                FixKind::Direct => {
                    if target >= 1 << 24 {
                        return Err(lerr("direct-call target beyond 24 bits".into()));
                    }
                    image.code[site as usize + 1] = target as u8;
                    image.code[site as usize + 2] = (target >> 8) as u8;
                    image.code[site as usize + 3] = (target >> 16) as u8;
                }
                FixKind::ShortDirect => {
                    let disp = target as i64 - site as i64;
                    let disp = i16::try_from(disp).map_err(|_| {
                        lerr(format!(
                            "short-direct call from `{}` cannot reach its target ({disp} bytes)",
                            lm.name
                        ))
                    })?;
                    image.code[site as usize + 1] = disp as u8;
                    image.code[site as usize + 2] = ((disp as u16) >> 8) as u8;
                }
                FixKind::DescWord => {
                    let w = image
                        .proc_desc(ProcRef {
                            module: tm,
                            ev_index: tp as u16,
                        })
                        .map_err(|e| lerr(e.to_string()))?
                        .raw();
                    image.code[site as usize + 1] = w as u8;
                    image.code[site as usize + 2] = (w >> 8) as u8;
                }
            }
        }
    }

    // Size statistics over the final bytes (after branch relaxation).
    for (mi, lm) in linked.iter().enumerate() {
        for &(start, end) in &lm.body_ranges {
            let s = (bases[mi].0 + start) as usize;
            let e = (bases[mi].0 + end) as usize;
            let listing = disassemble(&image.code, s, e)
                .map_err(|err| lerr(format!("disassembly check failed: {err}")))?;
            for (_, instr) in listing {
                stats.size.record(&instr);
            }
        }
    }
    stats.code_bytes = image.code.len() as u32;

    // Every image this linker emits must pass the static verifier —
    // the fpc-verify certificate is part of the output contract, and a
    // compiler bug that breaks stack discipline or transfer targets
    // should fail loudly here, not as a downstream dynamic trap.
    #[cfg(debug_assertions)]
    {
        let report = fpc_verify::verify_image(&image, &fpc_verify::VerifyOptions::default());
        debug_assert!(
            report.is_ok(),
            "linker output failed verification:\n{report}"
        );
    }

    Ok(Compiled { image, stats })
}
