//! Abstract syntax for Mesa-lite.

/// `instance Name of Module;` — a fresh set of global variables for
/// an existing module, sharing its code (§5.1: "several instances of a
/// module, each with its own global variables").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceDecl {
    /// The instance's name, usable as a call qualifier.
    pub name: String,
    /// The instantiated module.
    pub of: String,
    /// Source line.
    pub line: u32,
}

/// A compiled source module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Imported module names.
    pub imports: Vec<String>,
    /// Module instances declared here.
    pub instances: Vec<InstanceDecl>,
    /// Module global variables (shared by all its procedures — the
    /// paper's "global frame" contents).
    pub globals: Vec<VarDecl>,
    /// Procedures, in entry-vector order.
    pub procs: Vec<ProcDecl>,
    /// Source line of the `module` keyword.
    pub line: u32,
}

/// A variable declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Source line.
    pub line: u32,
}

/// Mesa-lite types. Scalars are one word; arrays are `n` words of int.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    /// Signed 16-bit integer.
    Int,
    /// Boolean (0 or 1 in a word).
    Bool,
    /// A context word (coroutine handle).
    Ctx,
    /// A word address.
    Ptr,
    /// `array[n] of int`.
    Array(u16),
}

impl Type {
    /// Words occupied in a frame or global frame.
    pub fn words(self) -> u32 {
        match self {
            Type::Array(n) => n as u32,
            _ => 1,
        }
    }

    /// Whether this is a one-word value type.
    pub fn is_scalar(self) -> bool {
        !matches!(self, Type::Array(_))
    }
}

/// A procedure declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcDecl {
    /// Procedure name.
    pub name: String,
    /// Parameters (always scalars).
    pub params: Vec<VarDecl>,
    /// Return type, if the procedure yields a value.
    pub ret: Option<Type>,
    /// Local variables (after the parameters).
    pub locals: Vec<VarDecl>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line of the `proc` keyword.
    pub line: u32,
}

/// A possibly module-qualified procedure name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcName {
    /// Qualifying module, or `None` for the current module.
    pub module: Option<String>,
    /// Procedure name.
    pub name: String,
    /// Source line.
    pub line: u32,
}

/// A call expression or statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallExpr {
    /// Callee.
    pub target: ProcName,
    /// Argument expressions.
    pub args: Vec<Expr>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `x := e;`
    Assign {
        /// Target variable.
        name: String,
        /// Value.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `a[i] := e;`
    StoreIndex {
        /// Array (or pointer) variable.
        name: String,
        /// Index expression.
        index: Expr,
        /// Value.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `*p := e;`
    StoreThrough {
        /// Pointer expression.
        ptr: Expr,
        /// Value.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `if c then … elsif c then … else … end;`
    If {
        /// `(condition, body)` arms, first is the `if`.
        arms: Vec<(Expr, Vec<Stmt>)>,
        /// The `else` body (possibly empty).
        els: Vec<Stmt>,
    },
    /// `while c do … end;`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return;` or `return e;`
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// `out e;` — append to the machine output.
    Out(Expr),
    /// `halt;`
    Halt,
    /// `yield;` — switch to the next process.
    Yield,
    /// A call for effect; any result is dropped.
    Call(CallExpr),
    /// An expression evaluated for effect (e.g. a statement-level
    /// `co_transfer`); its result is dropped.
    Expr(Expr),
    /// `co_free(c);` — explicitly free a context (feature F2).
    CoFree(Expr),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (signed; traps on zero)
    Div,
    /// `%` (signed; traps on zero)
    Mod,
    /// `and` (logical)
    And,
    /// `or` (logical)
    Or,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Num(i32),
    /// Boolean literal.
    Bool(bool),
    /// Variable reference.
    Var {
        /// Name.
        name: String,
        /// Source line.
        line: u32,
    },
    /// `a[i]` — array or pointer indexing.
    Index {
        /// Array or pointer variable.
        name: String,
        /// Index.
        index: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Procedure call with a result.
    Call(CallExpr),
    /// `&x` or `&a[i]` — address of a variable (§7.4 pointers).
    AddrOf {
        /// Variable name.
        name: String,
        /// Optional element index.
        index: Option<Box<Expr>>,
        /// Source line.
        line: u32,
    },
    /// `*p` — read through a pointer.
    Deref(Box<Expr>),
    /// `co_create(P)` — a fresh suspended context for `P` (which must
    /// take no parameters).
    CoCreate(ProcName),
    /// `co_start(c)` — first transfer into a fresh context: carries no
    /// value, evaluates to the first value the coroutine yields.
    CoStart(Box<Expr>),
    /// `co_transfer(c, v)` — transfer to `c` passing `v`; evaluates to
    /// the value passed back on resumption.
    CoTransfer {
        /// Destination context.
        ctx: Box<Expr>,
        /// Value carried in the argument record.
        value: Box<Expr>,
    },
    /// `co_caller()` — the `returnContext` of the latest transfer in.
    CoCaller,
    /// `spawn(P)` — create a process running `P`; evaluates to its id.
    Spawn(ProcName),
}

impl Expr {
    /// Source line of the expression, where tracked.
    pub fn line(&self) -> Option<u32> {
        match self {
            Expr::Var { line, .. } | Expr::Index { line, .. } | Expr::AddrOf { line, .. } => {
                Some(*line)
            }
            Expr::Call(c) => Some(c.target.line),
            Expr::CoCreate(p) | Expr::Spawn(p) => Some(p.line),
            Expr::Unary { expr, .. } | Expr::Deref(expr) | Expr::CoStart(expr) => expr.line(),
            Expr::Binary { lhs, .. } => lhs.line(),
            Expr::CoTransfer { ctx, .. } => ctx.line(),
            Expr::Num(_) | Expr::Bool(_) | Expr::CoCaller => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_words() {
        assert_eq!(Type::Int.words(), 1);
        assert_eq!(Type::Array(12).words(), 12);
        assert!(Type::Ptr.is_scalar());
        assert!(!Type::Array(2).is_scalar());
    }

    #[test]
    fn expr_lines_propagate() {
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Var {
                name: "x".into(),
                line: 3,
            }),
            rhs: Box::new(Expr::Num(1)),
        };
        assert_eq!(e.line(), Some(3));
        assert_eq!(Expr::Num(1).line(), None);
    }
}
