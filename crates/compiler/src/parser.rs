//! Recursive-descent parser for Mesa-lite.

use crate::ast::*;
use crate::error::{CompileError, Phase};
use crate::token::{lex, Tok, Token};

/// Parses one module source.
///
/// # Errors
///
/// [`CompileError`] with the offending line on lexical or syntactic
/// problems.
pub fn parse_module(src: &str) -> Result<Module, CompileError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let m = p.module()?;
    p.expect(Tok::Eof)?;
    Ok(m)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: Tok) -> bool {
        if *self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(Phase::Parse, Some(self.line()), msg)
    }

    fn expect(&mut self, t: Tok) -> Result<(), CompileError> {
        if self.eat(t.clone()) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn module(&mut self) -> Result<Module, CompileError> {
        let line = self.line();
        self.expect(Tok::Module)?;
        let name = self.ident()?;
        let mut imports = Vec::new();
        if self.eat(Tok::Imports) {
            imports.push(self.ident()?);
            while self.eat(Tok::Comma) {
                imports.push(self.ident()?);
            }
        }
        self.expect(Tok::Semi)?;
        let mut globals = Vec::new();
        let mut procs = Vec::new();
        let mut instances = Vec::new();
        loop {
            match self.peek() {
                Tok::Var => globals.push(self.var_decl()?),
                Tok::Proc => procs.push(self.proc_decl()?),
                Tok::Instance => {
                    let iline = self.line();
                    self.bump();
                    let iname = self.ident()?;
                    self.expect(Tok::Of)?;
                    let of = self.ident()?;
                    self.expect(Tok::Semi)?;
                    instances.push(InstanceDecl {
                        name: iname,
                        of,
                        line: iline,
                    });
                }
                Tok::End => break,
                other => return Err(self.err(format!("expected declaration, found {other}"))),
            }
        }
        self.expect(Tok::End)?;
        self.expect(Tok::Dot)?;
        Ok(Module {
            name,
            imports,
            globals,
            procs,
            instances,
            line,
        })
    }

    fn var_decl(&mut self) -> Result<VarDecl, CompileError> {
        let line = self.line();
        self.expect(Tok::Var)?;
        let name = self.ident()?;
        self.expect(Tok::Colon)?;
        let ty = self.ty()?;
        self.expect(Tok::Semi)?;
        Ok(VarDecl { name, ty, line })
    }

    fn ty(&mut self) -> Result<Type, CompileError> {
        match self.bump() {
            Tok::Int => Ok(Type::Int),
            Tok::Bool => Ok(Type::Bool),
            Tok::Ctx => Ok(Type::Ctx),
            Tok::Ptr => Ok(Type::Ptr),
            Tok::Array => {
                self.expect(Tok::LBracket)?;
                let n = match self.bump() {
                    Tok::Num(n) if (1..=4096).contains(&n) => n as u16,
                    Tok::Num(n) => {
                        return Err(self.err(format!("array size {n} out of range 1..=4096")))
                    }
                    other => return Err(self.err(format!("expected array size, found {other}"))),
                };
                self.expect(Tok::RBracket)?;
                self.expect(Tok::Of)?;
                self.expect(Tok::Int)?;
                Ok(Type::Array(n))
            }
            other => Err(self.err(format!("expected type, found {other}"))),
        }
    }

    fn proc_decl(&mut self) -> Result<ProcDecl, CompileError> {
        let line = self.line();
        self.expect(Tok::Proc)?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(Tok::RParen) {
            loop {
                let pline = self.line();
                let pname = self.ident()?;
                self.expect(Tok::Colon)?;
                let ty = self.ty()?;
                if !ty.is_scalar() {
                    return Err(self.err("array parameters are not supported; pass a pointer"));
                }
                params.push(VarDecl {
                    name: pname,
                    ty,
                    line: pline,
                });
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }
        let ret = if self.eat(Tok::Colon) {
            Some(self.ty()?)
        } else {
            None
        };
        if let Some(t) = ret {
            if !t.is_scalar() {
                return Err(self.err("procedures cannot return arrays"));
            }
        }
        let mut locals = Vec::new();
        while *self.peek() == Tok::Var {
            locals.push(self.var_decl()?);
        }
        let body = self.block()?;
        self.eat(Tok::Semi); // optional after `end`
        Ok(ProcDecl {
            name,
            params,
            ret,
            locals,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(Tok::Begin)?;
        let body = self.stmts_until(&[Tok::End])?;
        self.expect(Tok::End)?;
        Ok(body)
    }

    fn stmts_until(&mut self, stops: &[Tok]) -> Result<Vec<Stmt>, CompileError> {
        let mut out = Vec::new();
        while !stops.contains(self.peek()) {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::If => {
                self.bump();
                let mut arms = Vec::new();
                let cond = self.expr()?;
                self.expect(Tok::Then)?;
                let body = self.stmts_until(&[Tok::Elsif, Tok::Else, Tok::End])?;
                arms.push((cond, body));
                while self.eat(Tok::Elsif) {
                    let c = self.expr()?;
                    self.expect(Tok::Then)?;
                    let b = self.stmts_until(&[Tok::Elsif, Tok::Else, Tok::End])?;
                    arms.push((c, b));
                }
                let els = if self.eat(Tok::Else) {
                    self.stmts_until(&[Tok::End])?
                } else {
                    Vec::new()
                };
                self.expect(Tok::End)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::If { arms, els })
            }
            Tok::While => {
                self.bump();
                let cond = self.expr()?;
                self.expect(Tok::Do)?;
                let body = self.stmts_until(&[Tok::End])?;
                self.expect(Tok::End)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::While { cond, body })
            }
            Tok::Return => {
                self.bump();
                let value = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return { value, line })
            }
            Tok::Out => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Out(e))
            }
            Tok::Halt => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Halt)
            }
            Tok::Yield => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Yield)
            }
            Tok::Star => {
                self.bump();
                let ptr = self.unary()?;
                self.expect(Tok::Assign)?;
                let value = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::StoreThrough { ptr, value, line })
            }
            Tok::Ident(name) => {
                match self.peek2().clone() {
                    Tok::Assign => {
                        self.bump();
                        self.bump();
                        let value = self.expr()?;
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::Assign { name, value, line })
                    }
                    Tok::LBracket => {
                        self.bump();
                        self.bump();
                        let index = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        self.expect(Tok::Assign)?;
                        let value = self.expr()?;
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::StoreIndex {
                            name,
                            index,
                            value,
                            line,
                        })
                    }
                    Tok::LParen | Tok::Dot => {
                        // A call statement, or a builtin.
                        if name == "co_free" {
                            self.bump();
                            self.expect(Tok::LParen)?;
                            let e = self.expr()?;
                            self.expect(Tok::RParen)?;
                            self.expect(Tok::Semi)?;
                            return Ok(Stmt::CoFree(e));
                        }
                        let e = self.expr()?;
                        self.expect(Tok::Semi)?;
                        match e {
                            Expr::Call(c) => Ok(Stmt::Call(c)),
                            e @ (Expr::CoTransfer { .. } | Expr::Spawn(_)) => {
                                // A transfer or spawn for effect: the
                                // result is dropped.
                                Ok(Stmt::Expr(e))
                            }
                            _ => Err(self.err("expected a call statement")),
                        }
                    }
                    other => Err(self.err(format!(
                        "expected `:=`, `[` or `(` after `{name}`, found {other}"
                    ))),
                }
            }
            other => Err(self.err(format!("expected statement, found {other}"))),
        }
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.and_expr()?;
        while self.eat(Tok::Or) {
            let r = self.and_expr()?;
            e = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(e),
                rhs: Box::new(r),
            };
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.cmp_expr()?;
        while self.eat(Tok::And) {
            let r = self.cmp_expr()?;
            e = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(e),
                rhs: Box::new(r),
            };
        }
        Ok(e)
    }

    fn cmp_expr(&mut self) -> Result<Expr, CompileError> {
        let e = self.add_expr()?;
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(e),
        };
        self.bump();
        let r = self.add_expr()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(e),
            rhs: Box::new(r),
        })
    }

    fn add_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.mul_expr()?;
            e = Expr::Binary {
                op,
                lhs: Box::new(e),
                rhs: Box::new(r),
            };
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let r = self.unary()?;
            e = Expr::Binary {
                op,
                lhs: Box::new(e),
                rhs: Box::new(r),
            };
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(e),
                })
            }
            Tok::Not => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(e),
                })
            }
            Tok::Star => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Deref(Box::new(e)))
            }
            Tok::Amp => {
                let line = self.line();
                self.bump();
                let name = self.ident()?;
                let index = if self.eat(Tok::LBracket) {
                    let i = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    Some(Box::new(i))
                } else {
                    None
                };
                Ok(Expr::AddrOf { name, index, line })
            }
            _ => self.primary(),
        }
    }

    fn proc_name(&mut self, first: String, line: u32) -> Result<ProcName, CompileError> {
        if self.eat(Tok::Dot) {
            let name = self.ident()?;
            Ok(ProcName {
                module: Some(first),
                name,
                line,
            })
        } else {
            Ok(ProcName {
                module: None,
                name: first,
                line,
            })
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            Tok::Num(n) => Ok(Expr::Num(n)),
            Tok::True => Ok(Expr::Bool(true)),
            Tok::False => Ok(Expr::Bool(false)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                match self.peek() {
                    Tok::LBracket => {
                        self.bump();
                        let index = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        Ok(Expr::Index {
                            name,
                            index: Box::new(index),
                            line,
                        })
                    }
                    Tok::LParen | Tok::Dot => {
                        // Builtins are syntactically calls.
                        match name.as_str() {
                            "co_create" | "spawn" => {
                                self.expect(Tok::LParen)?;
                                let fline = self.line();
                                let first = self.ident()?;
                                let target = self.proc_name(first, fline)?;
                                self.expect(Tok::RParen)?;
                                if name == "co_create" {
                                    Ok(Expr::CoCreate(target))
                                } else {
                                    Ok(Expr::Spawn(target))
                                }
                            }
                            "co_start" => {
                                self.expect(Tok::LParen)?;
                                let ctx = self.expr()?;
                                self.expect(Tok::RParen)?;
                                Ok(Expr::CoStart(Box::new(ctx)))
                            }
                            "co_transfer" => {
                                self.expect(Tok::LParen)?;
                                let ctx = self.expr()?;
                                self.expect(Tok::Comma)?;
                                let value = self.expr()?;
                                self.expect(Tok::RParen)?;
                                Ok(Expr::CoTransfer {
                                    ctx: Box::new(ctx),
                                    value: Box::new(value),
                                })
                            }
                            "co_caller" => {
                                self.expect(Tok::LParen)?;
                                self.expect(Tok::RParen)?;
                                Ok(Expr::CoCaller)
                            }
                            _ => {
                                let target = self.proc_name(name, line)?;
                                self.expect(Tok::LParen)?;
                                let mut args = Vec::new();
                                if !self.eat(Tok::RParen) {
                                    loop {
                                        args.push(self.expr()?);
                                        if !self.eat(Tok::Comma) {
                                            break;
                                        }
                                    }
                                    self.expect(Tok::RParen)?;
                                }
                                Ok(Expr::Call(CallExpr { target, args }))
                            }
                        }
                    }
                    _ => Ok(Expr::Var { name, line }),
                }
            }
            other => Err(CompileError::new(
                Phase::Parse,
                Some(line),
                format!("expected expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_module() {
        let m = parse_module("module M; end.").unwrap();
        assert_eq!(m.name, "M");
        assert!(m.procs.is_empty());
    }

    #[test]
    fn parses_imports_and_globals() {
        let m = parse_module("module M imports A, B;\nvar g: int;\nvar t: array[8] of int;\nend.")
            .unwrap();
        assert_eq!(m.imports, vec!["A", "B"]);
        assert_eq!(m.globals.len(), 2);
        assert_eq!(m.globals[1].ty, Type::Array(8));
    }

    #[test]
    fn parses_fib() {
        let m = parse_module(
            "module Math;
             proc fib(n: int): int
             begin
               if n < 2 then return n; end;
               return fib(n - 1) + fib(n - 2);
             end;
             end.",
        )
        .unwrap();
        let p = &m.procs[0];
        assert_eq!(p.name, "fib");
        assert_eq!(p.params.len(), 1);
        assert_eq!(p.ret, Some(Type::Int));
        assert_eq!(p.body.len(), 2);
    }

    #[test]
    fn parses_locals_and_while() {
        let m = parse_module(
            "module M;
             proc main()
             var i: int;
             begin
               i := 0;
               while i < 10 do
                 out i;
                 i := i + 1;
               end;
             end;
             end.",
        )
        .unwrap();
        let p = &m.procs[0];
        assert_eq!(p.locals.len(), 1);
        assert!(matches!(p.body[1], Stmt::While { .. }));
    }

    #[test]
    fn parses_pointers_and_arrays() {
        let m = parse_module(
            "module M;
             proc f(p: ptr)
             begin
               *p := *p + 1;
             end;
             proc main()
             var a: array[4] of int;
             begin
               a[0] := 3;
               f(&a[0]);
               out a[0];
             end;
             end.",
        )
        .unwrap();
        assert!(matches!(m.procs[0].body[0], Stmt::StoreThrough { .. }));
        assert!(matches!(m.procs[1].body[1], Stmt::Call(_)));
    }

    #[test]
    fn parses_qualified_calls() {
        let m = parse_module(
            "module Main imports Math;
             proc main() begin out Math.fib(10); end;
             end.",
        )
        .unwrap();
        let Stmt::Out(Expr::Call(c)) = &m.procs[0].body[0] else {
            panic!("expected out(call)");
        };
        assert_eq!(c.target.module.as_deref(), Some("Math"));
        assert_eq!(c.target.name, "fib");
    }

    #[test]
    fn parses_coroutine_builtins() {
        let m = parse_module(
            "module M;
             proc gen() begin end;
             proc main()
             var c: ctx;
             var v: int;
             begin
               c := co_create(gen);
               v := co_transfer(c, 0);
               co_free(c);
               yield;
             end;
             end.",
        )
        .unwrap();
        let body = &m.procs[1].body;
        assert!(matches!(body[0], Stmt::Assign { .. }));
        assert!(matches!(body[2], Stmt::CoFree(_)));
        assert!(matches!(body[3], Stmt::Yield));
    }

    #[test]
    fn parses_if_elsif_else() {
        let m = parse_module(
            "module M;
             proc f(x: int): int
             begin
               if x = 0 then return 1;
               elsif x = 1 then return 2;
               else return 3;
               end;
             end;
             end.",
        )
        .unwrap();
        let Stmt::If { arms, els } = &m.procs[0].body[0] else {
            panic!()
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(els.len(), 1);
    }

    #[test]
    fn operator_precedence() {
        let m =
            parse_module("module M; proc f(): int begin return 1 + 2 * 3 < 4 and true; end; end.")
                .unwrap();
        // Shape: ((1 + (2*3)) < 4) and true
        let Stmt::Return { value: Some(e), .. } = &m.procs[0].body[0] else {
            panic!()
        };
        let Expr::Binary {
            op: BinOp::And,
            lhs,
            ..
        } = e
        else {
            panic!("top is and: {e:?}")
        };
        let Expr::Binary { op: BinOp::Lt, .. } = lhs.as_ref() else {
            panic!()
        };
    }

    #[test]
    fn parses_instance_declarations() {
        let m = parse_module(
            "module Main imports Counter;
             instance C2 of Counter;
             instance C3 of Counter;
             proc main() begin out C2.bump(); end;
             end.",
        )
        .unwrap();
        assert_eq!(m.instances.len(), 2);
        assert_eq!(m.instances[0].name, "C2");
        assert_eq!(m.instances[0].of, "Counter");
        assert_eq!(m.instances[1].line, 3);
    }

    #[test]
    fn instance_syntax_errors() {
        assert!(parse_module("module M; instance of X; end.").is_err());
        assert!(parse_module("module M; instance A X; end.").is_err());
        assert!(parse_module("module M; instance A of X end.").is_err());
    }

    #[test]
    fn error_reports_line() {
        let e = parse_module("module M;\nproc f(\nbegin end; end.").unwrap_err();
        assert_eq!(e.line(), Some(3));
    }

    #[test]
    fn missing_semicolon_is_an_error() {
        assert!(parse_module("module M; proc f() begin out 1 end; end.").is_err());
    }
}
