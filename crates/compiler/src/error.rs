//! Compilation errors.

use std::fmt;

/// Which phase produced the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// Name/shape checking.
    Sema,
    /// Code generation.
    Codegen,
    /// Linking.
    Link,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Lex => write!(f, "lex"),
            Phase::Parse => write!(f, "parse"),
            Phase::Sema => write!(f, "check"),
            Phase::Codegen => write!(f, "codegen"),
            Phase::Link => write!(f, "link"),
        }
    }
}

/// A compilation error with an optional source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    phase: Phase,
    line: Option<u32>,
    msg: String,
}

impl CompileError {
    /// Creates an error.
    pub fn new(phase: Phase, line: Option<u32>, msg: impl Into<String>) -> Self {
        CompileError {
            phase,
            line,
            msg: msg.into(),
        }
    }

    /// The phase that failed.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The 1-based source line, when known.
    pub fn line(&self) -> Option<u32> {
        self.line
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(l) => write!(f, "{} error at line {l}: {}", self.phase, self.msg),
            None => write!(f, "{} error: {}", self.phase, self.msg),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_and_phase() {
        let e = CompileError::new(Phase::Parse, Some(7), "expected `;`");
        assert_eq!(e.to_string(), "parse error at line 7: expected `;`");
        assert_eq!(e.phase(), Phase::Parse);
        assert_eq!(e.line(), Some(7));
        let e = CompileError::new(Phase::Link, None, "no main");
        assert_eq!(e.to_string(), "link error: no main");
    }
}
