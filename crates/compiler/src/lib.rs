#![warn(missing_docs)]
//! Mesa-lite: a small Algol-family module language for the *Fast
//! Procedure Calls* reproduction.
//!
//! The paper's static claims — encoding density (two-thirds one-byte
//! instructions), frame-size distribution (95% under 80 bytes), call
//! linkage space (D1) — are properties of compiled code, so this crate
//! is a real compiler: lexer → parser → checker → code generator →
//! linker, targeting the `fpc-isa` byte code and producing `fpc-vm`
//! images.
//!
//! The language has modules with global variables (the paper's global
//! frames), procedures, ints/bools/pointers/arrays, structured control
//! flow, and the transfer builtins that make coroutines and processes
//! ordinary programs: `co_create`, `co_start`, `co_transfer`,
//! `co_caller`, `co_free`, `spawn`, `yield`.
//!
//! # Example
//!
//! ```
//! use fpc_compiler::{compile, Options};
//! use fpc_vm::{Machine, MachineConfig};
//!
//! let src = "
//!     module Demo;
//!     proc double(x: int): int begin return x + x; end;
//!     proc main() begin out double(21); end;
//!     end.";
//! let compiled = compile(&[src], Options::default())?;
//! let mut m = Machine::load(&compiled.image, MachineConfig::i2()).unwrap();
//! m.run(10_000).unwrap();
//! assert_eq!(m.output(), &[42]);
//! # Ok::<(), fpc_compiler::CompileError>(())
//! ```

mod ast;
mod codegen;
mod error;
mod link;
mod parser;
mod sema;
mod token;

pub use ast::{BinOp, Expr, Module, ProcDecl, ProcName, Stmt, Type, UnOp, VarDecl};
pub use codegen::{CallSiteCounts, Linkage, Options, LONG_ARG_THRESHOLD, MAX_DEPTH};
pub use error::{CompileError, Phase};
pub use link::{CompileStats, Compiled, FrameStat};
pub use parser::parse_module;
pub use sema::{analyze, ProgramInfo};

/// Compiles a set of module sources into a loadable image.
///
/// Modules may import each other in any order; exactly one must define
/// a parameterless `main`, which becomes the entry procedure.
///
/// # Errors
///
/// The first [`CompileError`] encountered in any phase.
pub fn compile(sources: &[&str], options: Options) -> Result<Compiled, CompileError> {
    let modules: Vec<Module> = sources
        .iter()
        .map(|s| parse_module(s))
        .collect::<Result<_, _>>()?;
    let info = analyze(&modules)?;
    link::link(&modules, &info, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpc_vm::{Machine, MachineConfig};

    fn run(src: &str, config: MachineConfig, options: Options) -> Vec<u16> {
        let compiled = compile(&[src], options).unwrap();
        let mut m = Machine::load(&compiled.image, config).unwrap();
        m.run(5_000_000).unwrap();
        m.output().to_vec()
    }

    fn run_default(src: &str) -> Vec<u16> {
        run(src, MachineConfig::i2(), Options::default())
    }

    const FIB: &str = "
        module Math;
        proc fib(n: int): int
        begin
          if n < 2 then return n; end;
          return fib(n - 1) + fib(n - 2);
        end;
        proc main() begin out fib(12); end;
        end.";

    #[test]
    fn fib_compiles_and_runs() {
        assert_eq!(run_default(FIB), vec![144]);
    }

    #[test]
    fn fib_runs_under_all_linkages_and_machines() {
        for linkage in [Linkage::Mesa, Linkage::Direct, Linkage::ShortDirect] {
            for (cfg, bank_args) in [
                (MachineConfig::i1(), false),
                (MachineConfig::i2(), false),
                (MachineConfig::i3(), false),
                (MachineConfig::i4(), true),
            ] {
                let options = Options { linkage, bank_args };
                assert_eq!(
                    run(FIB, cfg, options),
                    vec![144],
                    "linkage {linkage:?} config {cfg:?}"
                );
            }
        }
    }

    #[test]
    fn nested_calls_spill_correctly() {
        // §5.2's f[g[], h[]] case: g's result must survive h's call.
        let src = "
            module M;
            proc g(): int begin return 30; end;
            proc h(): int begin return 12; end;
            proc f(a: int, b: int): int begin return a - b; end;
            proc main() begin out f(g(), h()); end;
            end.";
        assert_eq!(run_default(src), vec![18]);
        // The compiler must have recorded at least one static spill.
        let c = compile(&[src], Options::default()).unwrap();
        assert!(
            c.stats.static_spills >= 1,
            "spills {}",
            c.stats.static_spills
        );
    }

    #[test]
    fn gnarly_nesting_spills_and_reloads_in_order() {
        // Multiple pending values across several calls: the reload
        // order must restore the original stack exactly.
        let src = "
            module M;
            proc g(x: int): int begin return x + 1; end;
            proc h(x: int): int begin return x * 2; end;
            proc k(): int begin return 5; end;
            proc f(a: int, b: int): int begin return a - b; end;
            proc main()
            begin
              -- f(g(h(1)) + 2, k() * g(10)):
              --   h(1)=2, g(2)=3, +2 = 5; k()=5, g(10)=11, * = 55
              --   f(5, 55) = -50 → negated = 50
              out 0 - f(g(h(1)) + 2, k() * g(10));
            end;
            end.";
        assert_eq!(run_default(src), vec![50]);
        let c = compile(&[src], Options::default()).unwrap();
        assert!(
            c.stats.static_spills >= 3,
            "spills {}",
            c.stats.static_spills
        );
        // And the same under full acceleration with renaming.
        assert_eq!(
            run(
                src,
                MachineConfig::i4(),
                Options {
                    bank_args: true,
                    ..Default::default()
                }
            ),
            vec![50]
        );
    }

    #[test]
    fn deeply_nested_expression_spills() {
        let src = "
            module M;
            proc id(x: int): int begin return x; end;
            proc main() begin
              out id(1) + id(2) + id(3) + id(4) + id(5);
            end;
            end.";
        assert_eq!(run_default(src), vec![15]);
    }

    #[test]
    fn while_loops_and_globals() {
        let src = "
            module M;
            var sum: int;
            proc main()
            var i: int;
            begin
              i := 1;
              while i <= 10 do
                sum := sum + i;
                i := i + 1;
              end;
              out sum;
            end;
            end.";
        assert_eq!(run_default(src), vec![55]);
    }

    #[test]
    fn arrays_local_and_global() {
        let src = "
            module M;
            var gt: array[4] of int;
            proc main()
            var lt: array[4] of int;
            var i: int;
            begin
              i := 0;
              while i < 4 do
                lt[i] := i * 2;
                gt[i] := lt[i] + 1;
                i := i + 1;
              end;
              out lt[3];
              out gt[3];
            end;
            end.";
        assert_eq!(run_default(src), vec![6, 7]);
    }

    #[test]
    fn pointers_and_var_param_idiom() {
        let src = "
            module M;
            proc bump(p: ptr) begin *p := *p + 5; end;
            proc main()
            var v: int;
            begin
              v := 10;
              bump(&v);
              out v;
            end;
            end.";
        assert_eq!(run_default(src), vec![15]);
        // Also under register banks with the divert policy.
        assert_eq!(
            run(
                src,
                MachineConfig::i4(),
                Options {
                    bank_args: true,
                    ..Default::default()
                }
            ),
            vec![15]
        );
    }

    #[test]
    fn cross_module_program() {
        let lib = "
            module Lib;
            var calls: int;
            proc inc(x: int): int
            begin
              calls := calls + 1;
              return x + 1;
            end;
            proc count(): int begin return calls; end;
            end.";
        let main = "
            module Main imports Lib;
            proc main()
            begin
              out Lib.inc(Lib.inc(40));
              out Lib.count();
            end;
            end.";
        let compiled = compile(&[lib, main], Options::default()).unwrap();
        let mut m = Machine::load(&compiled.image, MachineConfig::i2()).unwrap();
        m.run(10_000).unwrap();
        assert_eq!(m.output(), &[42, 2]);
        assert!(compiled.stats.calls.external >= 2);
    }

    #[test]
    fn coroutines_in_the_source_language() {
        let src = "
            module M;
            proc gen()
            var mine: ctx;
            var v: int;
            begin
              v := 1;
              while v < 4 do
                mine := co_caller();
                v := co_transfer(mine, v * 10);
              end;
              co_transfer(co_caller(), 999);
            end;
            proc main()
            var c: ctx;
            var got: int;
            begin
              c := co_create(gen);
              got := co_start(c);
              out got;          -- 10
              got := co_transfer(co_caller(), 2);
              out got;          -- 20
              got := co_transfer(co_caller(), 3);
              out got;          -- 30
            end;
            end.";
        assert_eq!(run_default(src), vec![10, 20, 30]);
    }

    #[test]
    fn processes_in_the_source_language() {
        let src = "
            module M;
            proc worker()
            begin
              out 100;
              yield;
              out 101;
            end;
            proc main()
            begin
              spawn(worker);
              out 1;
              yield;
              out 2;
            end;
            end.";
        assert_eq!(run_default(src), vec![1, 100, 2, 101]);
    }

    #[test]
    fn stats_report_density_and_frames() {
        let c = compile(&[FIB], Options::default()).unwrap();
        assert!(c.stats.size.total() > 10);
        // Most instructions in this recursive code are one byte.
        assert!(c.stats.size.one_byte_fraction() > 0.5);
        assert_eq!(c.stats.frames.len(), 2);
        for f in &c.stats.frames {
            assert!(f.frame_bytes() < 80, "{} bytes", f.frame_bytes());
        }
        assert!(c.stats.calls.local >= 3);
    }

    #[test]
    fn direct_linkage_is_larger() {
        let mesa = compile(
            &[FIB],
            Options {
                linkage: Linkage::Mesa,
                ..Default::default()
            },
        )
        .unwrap();
        let direct = compile(
            &[FIB],
            Options {
                linkage: Linkage::Direct,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            direct.stats.size.bytes() > mesa.stats.size.bytes(),
            "direct {} vs mesa {}",
            direct.stats.size.bytes(),
            mesa.stats.size.bytes()
        );
    }

    #[test]
    fn long_argument_records_round_trip_many_parameters() {
        // Twelve arguments exceed the register-record threshold, so
        // they travel through a heap record (§4) — on every machine,
        // with and without renaming, and nothing leaks.
        let src = "
            module M;
            proc sum12(a: int, b: int, c: int, d: int, e: int, f: int,
                       g: int, h: int, i: int, j: int, k: int, l: int): int
            begin
              return a + b + c + d + e + f + g + h + i + j + k + l;
            end;
            proc main()
            var n: int;
            begin
              n := 0;
              while n < 20 do
                out sum12(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, n);
                n := n + 1;
              end;
            end;
            end.";
        let expected: Vec<u16> = (0..20).map(|n| 66 + n).collect();
        for (cfg, bank_args) in [
            (MachineConfig::i1(), false),
            (MachineConfig::i2(), false),
            (MachineConfig::i3(), false),
            (MachineConfig::i4(), true),
        ] {
            let out = run(
                src,
                cfg,
                Options {
                    bank_args,
                    ..Default::default()
                },
            );
            assert_eq!(out, expected, "config {cfg:?}");
        }
        // The records were allocated and freed in step: run on I2 and
        // inspect the heap.
        let compiled = compile(&[src], Options::default()).unwrap();
        let mut m = Machine::load(&compiled.image, MachineConfig::i2()).unwrap();
        m.run(1_000_000).unwrap();
        let heap = m.heap_stats().unwrap();
        assert_eq!(
            heap.live, 0,
            "records and frames all freed after main returns"
        );
        assert!(heap.allocs >= 40, "20 calls allocated 20 records + frames");
    }

    #[test]
    fn long_argument_records_spill_safely_inside_expressions() {
        // A long call nested inside another expression: the record
        // pointer itself is a pending value that must spill.
        let src = "
            module M;
            proc big(a: int, b: int, c: int, d: int, e: int,
                     f: int, g: int, h: int, i: int): int
            begin
              return a + b + c + d + e + f + g + h + i;
            end;
            proc one(): int begin return 1; end;
            proc main()
            begin
              out one() + big(1, 2, 3, 4, 5, 6, 7, 8, one() * 9);
            end;
            end.";
        assert_eq!(run_default(src), vec![46]);
    }

    const COUNTERS: [&str; 2] = [
        "module Counter;
         var n: int;
         proc bump(): int
         begin
           n := n + 1;
           return n;
         end;
         end.",
        "module Main imports Counter;
         instance Counter2 of Counter;
         proc main()
         begin
           out Counter.bump();   -- 1
           out Counter.bump();   -- 2
           out Counter2.bump();  -- 1: its own globals
           out Counter.bump();   -- 3
           out Counter2.bump();  -- 2
         end;
         end.",
    ];

    #[test]
    fn module_instances_have_independent_globals() {
        // §5.1: several instances of a module, each with its own global
        // variables, one copy of the code — reachable because the Mesa
        // linkage resolves environments through the GFT at call time.
        let compiled = compile(&COUNTERS, Options::default()).unwrap();
        assert_eq!(compiled.image.modules.len(), 3);
        assert_eq!(compiled.image.modules[2].name, "Counter2");
        assert_eq!(compiled.image.modules[2].code_of, Some(0));
        assert_eq!(
            compiled.image.modules[2].code_base, compiled.image.modules[0].code_base,
            "one copy of the code"
        );
        for cfg in [
            MachineConfig::i1(),
            MachineConfig::i2(),
            MachineConfig::i3(),
        ] {
            let mut m = Machine::load(&compiled.image, cfg).unwrap();
            m.run(10_000).unwrap();
            assert_eq!(m.output(), &[1, 2, 1, 3, 2], "config {cfg:?}");
        }
    }

    #[test]
    fn direct_linkage_collapses_instances_onto_the_owner() {
        // §6 D2: "Multiple instances of p's module are not possible
        // [with DIRECTCALL], since the global environment information
        // is bound into the code." The same program under early
        // binding funnels every bump into Counter's globals.
        let compiled = compile(
            &COUNTERS,
            Options {
                linkage: Linkage::Direct,
                ..Default::default()
            },
        )
        .unwrap();
        let mut m = Machine::load(&compiled.image, MachineConfig::i3()).unwrap();
        m.run(10_000).unwrap();
        assert_eq!(m.output(), &[1, 2, 3, 4, 5], "all five bumps hit the owner");
    }

    #[test]
    fn instance_scoping_and_errors() {
        // Instances are visible only in the declaring module.
        let third = "module Other imports Main;
             proc f() begin Counter2.bump(); end;
             end.";
        let e = compile(&[COUNTERS[0], COUNTERS[1], third], Options::default()).unwrap_err();
        assert!(e.to_string().contains("does not import"), "{e}");
        // Instantiating an instance is rejected.
        let bad = "module M imports Counter;
             instance A of Counter;
             instance B of A;
             proc main() begin end;
             end.";
        let e = compile(&[COUNTERS[0], bad], Options::default()).unwrap_err();
        assert!(e.to_string().contains("itself an instance"), "{e}");
        // Unknown target module.
        let bad = "module M; instance A of Ghost; proc main() begin end; end.";
        let e = compile(&[bad], Options::default()).unwrap_err();
        assert!(e.to_string().contains("unknown module"), "{e}");
    }

    #[test]
    fn mixed_linkage_blends_local_and_direct() {
        let lib = "module Lib; proc f(x: int): int begin return x + 1; end; end.";
        let main = "
            module Main imports Lib;
            proc g(x: int): int begin return x * 2; end;
            proc main() begin out g(Lib.f(20)); end;
            end.";
        let compiled = compile(
            &[lib, main],
            Options {
                linkage: Linkage::Mixed,
                ..Default::default()
            },
        )
        .unwrap();
        // Intra-module call stays a LOCALCALL, cross-module becomes a
        // DIRECTCALL; nothing goes through the link vector.
        assert_eq!(compiled.stats.calls.local, 1);
        assert_eq!(compiled.stats.calls.direct, 1);
        assert_eq!(compiled.stats.calls.external, 0);
        let mut m = Machine::load(&compiled.image, MachineConfig::i3()).unwrap();
        m.run(10_000).unwrap();
        assert_eq!(m.output(), &[42]);
    }

    #[test]
    fn mixed_linkage_size_sits_between_mesa_and_direct() {
        let lib = "module Lib; proc f(x: int): int begin return x + 1; end; end.";
        let main = "
            module Main imports Lib;
            proc g(x: int): int begin return g(x) + Lib.f(x); end;
            proc main() begin out Lib.f(g(1)); end;
            end.";
        let size = |linkage| {
            compile(
                &[lib, main],
                Options {
                    linkage,
                    ..Default::default()
                },
            )
            .unwrap()
            .stats
            .size
            .bytes()
        };
        let mesa = size(Linkage::Mesa);
        let mixed = size(Linkage::Mixed);
        let direct = size(Linkage::Direct);
        assert!(mesa <= mixed && mixed <= direct, "{mesa} {mixed} {direct}");
    }

    #[test]
    fn large_module_uses_gft_bias_entries() {
        // A module with 40 entry points: packed descriptors for entries
        // 32..39 need the second GFT entry (bias 1) — §5.1's escape
        // hatch, exercised end to end through compiled code.
        let mut lib = String::from("module Big;\n");
        for i in 0..40 {
            lib.push_str(&format!(
                "proc p{i}(x: int): int begin return x + {i}; end;\n"
            ));
        }
        lib.push_str("end.");
        let main = "
            module Main imports Big;
            proc main()
            begin
              out Big.p0(100);
              out Big.p33(100);
              out Big.p39(100);
            end;
            end.";
        let compiled = compile(&[&lib, main], Options::default()).unwrap();
        assert_eq!(compiled.image.gft_base(1), 2, "Big owns two GFT entries");
        for config in [
            MachineConfig::i1(),
            MachineConfig::i2(),
            MachineConfig::i3(),
        ] {
            let mut m = Machine::load(&compiled.image, config).unwrap();
            m.run(100_000).unwrap();
            assert_eq!(m.output(), &[100, 133, 139]);
        }
    }

    #[test]
    fn division_by_zero_traps() {
        let src = "module M; proc main() var x: int; begin x := 0; out 1 / x; end; end.";
        let compiled = compile(&[src], Options::default()).unwrap();
        let mut m = Machine::load(&compiled.image, MachineConfig::i2()).unwrap();
        assert!(matches!(
            m.run(1000).unwrap_err(),
            fpc_vm::VmError::UnhandledTrap(fpc_vm::TrapCode::DivideByZero)
        ));
    }

    #[test]
    fn logical_operators_normalise() {
        let src = "
            module M;
            proc main()
            begin
              if 2 and 1 then out 1; else out 0; end;
              if 0 or 7 then out 1; else out 0; end;
              if not 0 then out 1; else out 0; end;
            end;
            end.";
        assert_eq!(run_default(src), vec![1, 1, 1]);
    }

    #[test]
    fn elsif_chains() {
        let src = "
            module M;
            proc classify(x: int): int
            begin
              if x < 0 then return 0 - 1;
              elsif x = 0 then return 0;
              elsif x < 10 then return 1;
              else return 2;
              end;
            end;
            proc main()
            begin
              out classify(0 - 5) + 1;  -- 0
              out classify(0);          -- 0
              out classify(5);          -- 1
              out classify(50);         -- 2
            end;
            end.";
        assert_eq!(run_default(src), vec![0, 0, 1, 2]);
    }

    #[test]
    fn falling_off_valued_proc_traps() {
        let src = "
            module M;
            proc f(x: int): int begin if x > 0 then return 1; end; end;
            proc main() begin out f(0); end;
            end.";
        let compiled = compile(&[src], Options::default()).unwrap();
        let mut m = Machine::load(&compiled.image, MachineConfig::i2()).unwrap();
        assert!(matches!(
            m.run(1000).unwrap_err(),
            fpc_vm::VmError::UnhandledTrap(fpc_vm::TrapCode::User(254))
        ));
    }
}
