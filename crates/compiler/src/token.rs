//! Lexical analysis for Mesa-lite.
//!
//! Mesa-lite is the small Algol-family module language of this
//! reproduction: enough of Mesa's shape (modules, procedures, globals,
//! coroutine transfer) to generate realistic byte code for the
//! experiments, and nothing more. Comments run from `--` to end of
//! line.

use std::fmt;

use crate::error::{CompileError, Phase};

/// A lexical token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: Tok,
    /// 1-based source line, for diagnostics.
    pub line: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier.
    Ident(String),
    /// An integer literal.
    Num(i32),
    // Keywords.
    Module,
    Imports,
    Instance,
    End,
    Var,
    Proc,
    Begin,
    If,
    Then,
    Elsif,
    Else,
    While,
    Do,
    Return,
    Out,
    Halt,
    Yield,
    True,
    False,
    Int,
    Bool,
    Ctx,
    Ptr,
    Array,
    Of,
    And,
    Or,
    Not,
    // Punctuation and operators.
    Semi,
    Comma,
    Dot,
    Colon,
    Assign,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Amp,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Num(n) => write!(f, "number {n}"),
            Tok::Eof => write!(f, "end of input"),
            other => write!(f, "`{}`", keyword_or_symbol(other)),
        }
    }
}

fn keyword_or_symbol(t: &Tok) -> &'static str {
    match t {
        Tok::Module => "module",
        Tok::Imports => "imports",
        Tok::Instance => "instance",
        Tok::End => "end",
        Tok::Var => "var",
        Tok::Proc => "proc",
        Tok::Begin => "begin",
        Tok::If => "if",
        Tok::Then => "then",
        Tok::Elsif => "elsif",
        Tok::Else => "else",
        Tok::While => "while",
        Tok::Do => "do",
        Tok::Return => "return",
        Tok::Out => "out",
        Tok::Halt => "halt",
        Tok::Yield => "yield",
        Tok::True => "true",
        Tok::False => "false",
        Tok::Int => "int",
        Tok::Bool => "bool",
        Tok::Ctx => "ctx",
        Tok::Ptr => "ptr",
        Tok::Array => "array",
        Tok::Of => "of",
        Tok::And => "and",
        Tok::Or => "or",
        Tok::Not => "not",
        Tok::Semi => ";",
        Tok::Comma => ",",
        Tok::Dot => ".",
        Tok::Colon => ":",
        Tok::Assign => ":=",
        Tok::LParen => "(",
        Tok::RParen => ")",
        Tok::LBracket => "[",
        Tok::RBracket => "]",
        Tok::Plus => "+",
        Tok::Minus => "-",
        Tok::Star => "*",
        Tok::Slash => "/",
        Tok::Percent => "%",
        Tok::Eq => "=",
        Tok::Ne => "<>",
        Tok::Lt => "<",
        Tok::Le => "<=",
        Tok::Gt => ">",
        Tok::Ge => ">=",
        Tok::Amp => "&",
        // Audited: not guest-reachable. The only caller is the Display
        // impl above, whose outer match renders Ident/Num/Eof itself and
        // never forwards them here.
        Tok::Ident(_) | Tok::Num(_) | Tok::Eof => unreachable!(),
    }
}

fn keyword(s: &str) -> Option<Tok> {
    Some(match s {
        "module" => Tok::Module,
        "imports" => Tok::Imports,
        "instance" => Tok::Instance,
        "end" => Tok::End,
        "var" => Tok::Var,
        "proc" => Tok::Proc,
        "begin" => Tok::Begin,
        "if" => Tok::If,
        "then" => Tok::Then,
        "elsif" => Tok::Elsif,
        "else" => Tok::Else,
        "while" => Tok::While,
        "do" => Tok::Do,
        "return" => Tok::Return,
        "out" => Tok::Out,
        "halt" => Tok::Halt,
        "yield" => Tok::Yield,
        "true" => Tok::True,
        "false" => Tok::False,
        "int" => Tok::Int,
        "bool" => Tok::Bool,
        "ctx" => Tok::Ctx,
        "ptr" => Tok::Ptr,
        "array" => Tok::Array,
        "of" => Tok::Of,
        "and" => Tok::And,
        "or" => Tok::Or,
        "not" => Tok::Not,
        _ => return None,
    })
}

/// Tokenises a source string.
///
/// # Errors
///
/// [`CompileError`] for unknown characters or malformed numbers.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let bytes = src.as_bytes();
    let mut i = 0;
    let err = |line: u32, msg: String| CompileError::new(Phase::Lex, Some(line), msg);
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let kind = keyword(word).unwrap_or_else(|| Tok::Ident(word.to_string()));
                out.push(Token { kind, line });
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i32 = src[start..i]
                    .parse()
                    .map_err(|_| err(line, format!("number `{}` too large", &src[start..i])))?;
                if n > u16::MAX as i32 {
                    return Err(err(line, format!("literal {n} exceeds the 16-bit word")));
                }
                out.push(Token {
                    kind: Tok::Num(n),
                    line,
                });
            }
            _ => {
                let (kind, adv) = match (c, bytes.get(i + 1).map(|&b| b as char)) {
                    (':', Some('=')) => (Tok::Assign, 2),
                    (':', _) => (Tok::Colon, 1),
                    ('<', Some('=')) => (Tok::Le, 2),
                    ('<', Some('>')) => (Tok::Ne, 2),
                    ('<', _) => (Tok::Lt, 1),
                    ('>', Some('=')) => (Tok::Ge, 2),
                    ('>', _) => (Tok::Gt, 1),
                    (';', _) => (Tok::Semi, 1),
                    (',', _) => (Tok::Comma, 1),
                    ('.', _) => (Tok::Dot, 1),
                    ('(', _) => (Tok::LParen, 1),
                    (')', _) => (Tok::RParen, 1),
                    ('[', _) => (Tok::LBracket, 1),
                    (']', _) => (Tok::RBracket, 1),
                    ('+', _) => (Tok::Plus, 1),
                    ('-', _) => (Tok::Minus, 1),
                    ('*', _) => (Tok::Star, 1),
                    ('/', _) => (Tok::Slash, 1),
                    ('%', _) => (Tok::Percent, 1),
                    ('=', _) => (Tok::Eq, 1),
                    ('&', _) => (Tok::Amp, 1),
                    _ => return Err(err(line, format!("unexpected character `{c}`"))),
                };
                out.push(Token { kind, line });
                i += adv;
            }
        }
    }
    out.push(Token {
        kind: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("module Foo;"),
            vec![Tok::Module, Tok::Ident("Foo".into()), Tok::Semi, Tok::Eof]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("a := b <= c <> d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Assign,
                Tok::Ident("b".into()),
                Tok::Le,
                Tok::Ident("c".into()),
                Tok::Ne,
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("x -- comment := junk\ny"),
            vec![Tok::Ident("x".into()), Tok::Ident("y".into()), Tok::Eof]
        );
    }

    #[test]
    fn minus_minus_needs_no_space_before() {
        assert_eq!(
            kinds("1-2"),
            vec![Tok::Num(1), Tok::Minus, Tok::Num(2), Tok::Eof]
        );
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4, 4]);
    }

    #[test]
    fn oversized_literal_rejected() {
        let e = lex("70000").unwrap_err();
        assert!(e.to_string().contains("16-bit"));
    }

    #[test]
    fn unknown_character_rejected() {
        assert!(lex("@").is_err());
    }
}
