//! Byte-code generation for one procedure.
//!
//! The generator tracks the virtual evaluation-stack depth and enforces
//! the strict discipline the Mesa encoding requires: at every `XFER`
//! the stack holds exactly the outgoing argument record, so pending
//! temporaries are **spilled** to frame temporaries before a call and
//! reloaded after — the cost §5.2 complains about for `f[g[], h[]]`.
//! The number of static spill/reload pairs is reported in the
//! compilation statistics (experiment E9).

use std::collections::HashMap;

use fpc_isa::{Assembler, Instr, Label};

use crate::ast::*;
use crate::error::{CompileError, Phase};
use crate::sema::{GlobalSlot, ProgramInfo};

/// Call linkage selection (§5 vs §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Linkage {
    /// The Mesa encoding: `LOCALCALL` within a module, `EXTERNALCALL`
    /// through the link vector across modules.
    #[default]
    Mesa,
    /// Early binding: every call is a 4-byte `DIRECTCALL` (§6).
    Direct,
    /// Early binding with locality: every call is a 3-byte
    /// `SHORTDIRECTCALL`; linking fails if a callee is out of reach.
    ShortDirect,
    /// The mixed encoding §8 calls attractive: compact one-level
    /// `LOCALCALL`s within the module (the code "under development"
    /// keeps its flexibility) and early-bound `DIRECTCALL`s into other
    /// modules ("most procedures are 'in the system' … and hence are
    /// well known").
    Mixed,
}

/// Compiler options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Options {
    /// Call linkage.
    pub linkage: Linkage,
    /// Compile for register-bank argument renaming (§7.2): prologues do
    /// not store arguments; the image then requires a renaming machine.
    pub bank_args: bool,
}

/// Maximum evaluation-stack depth the generator will produce (the
/// machine's register stack is 16; two slots are headroom for the
/// transfer operands).
pub const MAX_DEPTH: u32 = 14;

/// Calls with more arguments than this use §4's long-argument-record
/// protocol: "an argument or return record can be so large that it
/// will not fit [the registers]. When this happens, space is allocated
/// from the heap to hold the record, and a pointer is passed in one of
/// the registers." The record comes from the same allocator as frames
/// and is freed by the receiver.
pub const LONG_ARG_THRESHOLD: usize = 8;

/// A linker fixup recorded against a label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixKind {
    /// Patch a 24-bit absolute header address into a `DFC` site.
    Direct,
    /// Patch a 16-bit PC-relative displacement into an `SDFC` site.
    ShortDirect,
    /// Patch a packed procedure-descriptor word into a `LIW` site.
    DescWord,
}

/// One fixup: the label marks the instruction start.
#[derive(Debug, Clone, Copy)]
pub struct CallFixup {
    /// Label bound at the instruction's first byte.
    pub label: Label,
    /// What to patch.
    pub kind: FixKind,
    /// Target `(module, proc)`.
    pub target: (usize, usize),
}

/// Static call-site counts by linkage (experiment E4).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CallSiteCounts {
    /// `LOCALCALL` sites.
    pub local: u64,
    /// `EXTERNALCALL` sites.
    pub external: u64,
    /// `DIRECTCALL` sites.
    pub direct: u64,
    /// `SHORTDIRECTCALL` sites.
    pub short_direct: u64,
}

impl CallSiteCounts {
    /// Total call sites.
    pub fn total(&self) -> u64 {
        self.local + self.external + self.direct + self.short_direct
    }
}

/// Result of generating one procedure body.
#[derive(Debug)]
pub struct ProcCode {
    /// Bound at the first header byte.
    pub header_label: Label,
    /// Bound at the first body instruction.
    pub body_start: Label,
    /// Bound just past the last body instruction.
    pub body_end: Label,
    /// Locals including parameters and spill temporaries.
    pub nlocals: u32,
    /// Parameter count.
    pub nargs: u8,
    /// §7.4 header flag.
    pub addr_taken: bool,
    /// Fixups to apply after placement.
    pub fixups: Vec<CallFixup>,
    /// Static spill/reload pairs emitted.
    pub spills: u64,
    /// Call sites by linkage.
    pub calls: CallSiteCounts,
}

/// Per-module link-vector accumulation: target → LV index.
#[derive(Debug, Default)]
pub struct LvBuilder {
    order: Vec<(usize, usize)>,
    index: HashMap<(usize, usize), u8>,
}

impl LvBuilder {
    /// The accumulated targets in LV order.
    pub fn targets(&self) -> &[(usize, usize)] {
        &self.order
    }

    fn get_or_insert(&mut self, target: (usize, usize)) -> Result<u8, CompileError> {
        if let Some(&i) = self.index.get(&target) {
            return Ok(i);
        }
        if self.order.len() >= 256 {
            return Err(CompileError::new(
                Phase::Codegen,
                None,
                "more than 256 link-vector entries in one module",
            ));
        }
        let i = self.order.len() as u8;
        self.order.push(target);
        self.index.insert(target, i);
        Ok(i)
    }
}

#[derive(Debug, Clone, Copy)]
enum Slot {
    Local(u32, Type),
    Global(u8, Type),
}

/// Generates the body of `proc` into `asm` (the module's assembler).
///
/// The caller has already emitted the 6-byte header placeholder and
/// bound `header_label` at its start.
///
/// # Errors
///
/// [`CompileError`] for encoding-limit violations (expression too deep,
/// too many temporaries, too many LV entries).
#[allow(clippy::too_many_arguments)]
pub fn gen_proc(
    asm: &mut Assembler,
    header_label: Label,
    info: &ProgramInfo,
    module: usize,
    proc: &ProcDecl,
    options: Options,
    lv: &mut LvBuilder,
) -> Result<ProcCode, CompileError> {
    let mut scope = HashMap::new();
    // Globals first so locals shadow them.
    for (name, GlobalSlot { offset, ty }) in &info.modules[module].globals {
        scope.insert(name.clone(), Slot::Global(*offset, *ty));
    }
    let mut next = 0u32;
    for v in proc.params.iter().chain(&proc.locals) {
        scope.insert(v.name.clone(), Slot::Local(next, v.ty));
        next += v.ty.words();
    }
    let sig = &info.modules[module].procs[*info.modules[module]
        .proc_index
        .get(&proc.name)
        .expect("sema registered the proc")];

    let body_start = asm.label();
    let body_end = asm.label();
    asm.bind(body_start);

    let mut g = Gen {
        asm,
        info,
        module,
        options,
        lv,
        scope,
        named_words: next,
        temps_live: 0,
        max_temps: 0,
        depth: 0,
        fixups: Vec::new(),
        spills: 0,
        calls: CallSiteCounts::default(),
    };

    // Prologue. Short argument lists arrive in the registers: without
    // renaming, pop them into their local slots (§5.2's "ordinary
    // STORE instructions"); with renaming they are already in place
    // (§7.2). Long argument lists arrive as a pointer to a heap record
    // (§4): copy the record into the locals and free it — "the
    // receiver can therefore free it as soon as he is done with it."
    let nparams = proc.params.len();
    let nargs = if nparams > LONG_ARG_THRESHOLD {
        1u8
    } else {
        nparams as u8
    };
    if nparams > LONG_ARG_THRESHOLD {
        if !options.bank_args {
            // The record pointer parks in slot 0 (overwritten last).
            g.depth = 1;
            g.emit(Instr::StoreLocal(0));
            g.depth -= 1;
        }
        for i in (1..nparams).rev() {
            g.emit(Instr::LoadLocal(0));
            g.emit(Instr::LoadImm(i as u16));
            g.emit(Instr::LoadIndex);
            g.emit(Instr::StoreLocal(i as u8));
        }
        g.emit(Instr::LoadLocal(0));
        g.emit(Instr::Dup);
        g.emit(Instr::LoadImm(0));
        g.emit(Instr::LoadIndex);
        g.emit(Instr::Exch);
        g.emit(Instr::FreeRecord);
        g.emit(Instr::StoreLocal(0));
    } else if !options.bank_args {
        g.depth = nargs as u32;
        for i in (0..nargs).rev() {
            g.emit(Instr::StoreLocal(i));
            g.depth -= 1;
        }
    }

    g.stmts(&proc.body)?;

    // Epilogue: a value-returning procedure falling off the end is a
    // runtime error; a plain procedure just returns.
    if proc.ret.is_some() {
        g.emit(Instr::Trap(254));
    } else {
        g.emit(Instr::Ret);
    }

    let nlocals = g.named_words + g.max_temps;
    let (fixups, spills, calls) = (g.fixups, g.spills, g.calls);
    asm.bind(body_end);
    Ok(ProcCode {
        header_label,
        body_start,
        body_end,
        nlocals,
        nargs,
        addr_taken: sig.addr_taken,
        fixups,
        spills,
        calls,
    })
}

struct Gen<'a> {
    asm: &'a mut Assembler,
    info: &'a ProgramInfo,
    module: usize,
    options: Options,
    lv: &'a mut LvBuilder,
    scope: HashMap<String, Slot>,
    named_words: u32,
    temps_live: u32,
    max_temps: u32,
    depth: u32,
    fixups: Vec<CallFixup>,
    spills: u64,
    calls: CallSiteCounts,
}

impl Gen<'_> {
    fn emit(&mut self, i: Instr) {
        self.asm.instr(i);
    }

    fn err(&self, line: Option<u32>, msg: impl Into<String>) -> CompileError {
        CompileError::new(Phase::Codegen, line, msg)
    }

    fn pushed(&mut self, line: Option<u32>) -> Result<(), CompileError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(line, "expression too deep for the register stack"));
        }
        Ok(())
    }

    fn local_slot_u8(&self, slot: u32, line: Option<u32>) -> Result<u8, CompileError> {
        u8::try_from(slot).map_err(|_| self.err(line, "more than 255 local words"))
    }

    fn alloc_temp(&mut self, line: Option<u32>) -> Result<u8, CompileError> {
        let slot = self.named_words + self.temps_live;
        self.temps_live += 1;
        self.max_temps = self.max_temps.max(self.temps_live);
        self.local_slot_u8(slot, line)
    }

    fn slot(&self, name: &str, _line: u32) -> Slot {
        *self.scope.get(name).expect("sema checked names")
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), CompileError> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        debug_assert_eq!(self.depth, 0, "statements start with an empty stack");
        match s {
            Stmt::Assign { name, value, line } => {
                self.expr(value)?;
                match self.slot(name, *line) {
                    Slot::Local(slot, _) => {
                        let slot = self.local_slot_u8(slot, Some(*line))?;
                        self.emit(Instr::StoreLocal(slot));
                    }
                    Slot::Global(off, _) => self.emit(Instr::StoreGlobal(off)),
                }
                self.depth -= 1;
            }
            Stmt::StoreIndex {
                name,
                index,
                value,
                line,
            } => {
                self.expr(value)?;
                self.push_base(name, *line)?;
                self.expr(index)?;
                self.emit(Instr::StoreIndex);
                self.depth -= 3;
            }
            Stmt::StoreThrough { ptr, value, .. } => {
                self.expr(value)?;
                self.expr(ptr)?;
                self.emit(Instr::Write);
                self.depth -= 2;
            }
            Stmt::If { arms, els } => {
                let end = self.asm.label();
                let mut next = self.asm.label();
                for (i, (cond, body)) in arms.iter().enumerate() {
                    if i > 0 {
                        self.asm.bind(next);
                        next = self.asm.label();
                    }
                    self.expr(cond)?;
                    self.depth -= 1;
                    self.asm.jump_zero(next);
                    self.stmts(body)?;
                    self.asm.jump(end);
                }
                self.asm.bind(next);
                self.stmts(els)?;
                self.asm.bind(end);
            }
            Stmt::While { cond, body } => {
                let top = self.asm.label();
                let exit = self.asm.label();
                self.asm.bind(top);
                self.expr(cond)?;
                self.depth -= 1;
                self.asm.jump_zero(exit);
                self.stmts(body)?;
                self.asm.jump(top);
                self.asm.bind(exit);
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    self.expr(v)?;
                    self.depth -= 1;
                }
                self.emit(Instr::Ret);
            }
            Stmt::Out(e) => {
                self.expr(e)?;
                self.emit(Instr::Out);
                self.depth -= 1;
            }
            Stmt::Halt => self.emit(Instr::Halt),
            Stmt::Yield => self.emit(Instr::ProcessSwitch),
            Stmt::Call(c) => {
                let has_result = self.gen_call(c)?;
                if has_result {
                    self.emit(Instr::Drop);
                    self.depth -= 1;
                }
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.emit(Instr::Drop);
                self.depth -= 1;
            }
            Stmt::CoFree(e) => {
                self.expr(e)?;
                self.emit(Instr::FreeContext);
                self.depth -= 1;
            }
        }
        debug_assert_eq!(self.depth, 0, "statements end with an empty stack");
        Ok(())
    }

    /// Pushes the base address (array) or base value (pointer) for
    /// indexed access to `name`.
    fn push_base(&mut self, name: &str, line: u32) -> Result<(), CompileError> {
        match self.slot(name, line) {
            Slot::Local(slot, Type::Array(_)) => {
                let slot = self.local_slot_u8(slot, Some(line))?;
                self.emit(Instr::LoadLocalAddr(slot));
            }
            Slot::Local(slot, _) => {
                let slot = self.local_slot_u8(slot, Some(line))?;
                self.emit(Instr::LoadLocal(slot));
            }
            Slot::Global(off, Type::Array(_)) => self.emit(Instr::LoadGlobalAddr(off)),
            Slot::Global(off, _) => self.emit(Instr::LoadGlobal(off)),
        }
        self.pushed(Some(line))
    }

    /// Spills everything on the virtual stack to temporaries. Returns
    /// the temp slots in pop order (first element holds what was the
    /// top of stack).
    fn spill_pending(&mut self, line: Option<u32>) -> Result<Vec<u8>, CompileError> {
        let pending = self.depth;
        let mut temps = Vec::with_capacity(pending as usize);
        for _ in 0..pending {
            let t = self.alloc_temp(line)?;
            self.emit(Instr::StoreLocal(t));
            self.depth -= 1;
            temps.push(t);
        }
        self.spills += pending as u64;
        Ok(temps)
    }

    /// Reloads spilled values, keeping a result (if any) on top.
    fn reload_pending(&mut self, temps: &[u8], has_result: bool) -> Result<(), CompileError> {
        for &t in temps.iter().rev() {
            self.emit(Instr::LoadLocal(t));
            self.pushed(None)?;
            if has_result {
                self.emit(Instr::Exch);
            }
        }
        self.temps_live -= temps.len() as u32;
        Ok(())
    }

    /// Emits a call; returns whether a result was pushed.
    fn gen_call(&mut self, c: &CallExpr) -> Result<bool, CompileError> {
        let (mi, pi) = self.info.resolve(self.module, &c.target)?;
        let has_result = self.info.sig(mi, pi).ret.is_some();
        let line = Some(c.target.line);
        let temps = self.spill_pending(line)?;
        let long = c.args.len() > LONG_ARG_THRESHOLD;
        if long {
            // §4 long argument record: allocate, fill, pass the pointer.
            self.emit(Instr::AllocRecord(c.args.len() as u8));
            self.pushed(line)?;
            for (i, a) in c.args.iter().enumerate() {
                self.emit(Instr::Dup);
                self.pushed(line)?;
                self.expr(a)?;
                self.emit(Instr::Exch);
                self.emit(Instr::LoadImm(i as u16));
                self.pushed(line)?;
                self.emit(Instr::StoreIndex);
                self.depth -= 3;
            }
        } else {
            for a in &c.args {
                self.expr(a)?;
            }
        }
        match self.options.linkage {
            Linkage::Mesa | Linkage::Mixed if mi == self.module => {
                self.emit(Instr::LocalCall(pi as u8));
                self.calls.local += 1;
            }
            Linkage::Mesa => {
                let idx = self.lv.get_or_insert((mi, pi))?;
                self.emit(Instr::ExternalCall(idx));
                self.calls.external += 1;
            }
            Linkage::Direct | Linkage::Mixed => {
                let l = self.asm.label();
                self.asm.bind(l);
                self.asm.raw(&[fpc_isa::opcode::DFC, 0, 0, 0]);
                self.fixups.push(CallFixup {
                    label: l,
                    kind: FixKind::Direct,
                    target: (mi, pi),
                });
                self.calls.direct += 1;
            }
            Linkage::ShortDirect => {
                let l = self.asm.label();
                self.asm.bind(l);
                self.asm.raw(&[fpc_isa::opcode::SDFC, 0, 0]);
                self.fixups.push(CallFixup {
                    label: l,
                    kind: FixKind::ShortDirect,
                    target: (mi, pi),
                });
                self.calls.short_direct += 1;
            }
        }
        self.depth -= if long { 1 } else { c.args.len() as u32 };
        if has_result {
            self.pushed(line)?;
        }
        self.reload_pending(&temps, has_result)?;
        Ok(has_result)
    }

    /// Emits a descriptor-word load for `target` (patched at link).
    fn gen_desc(&mut self, target: &ProcName) -> Result<(), CompileError> {
        let t = self.info.resolve(self.module, target)?;
        let l = self.asm.label();
        self.asm.bind(l);
        self.asm.raw(&[fpc_isa::opcode::LIW, 0, 0]);
        self.fixups.push(CallFixup {
            label: l,
            kind: FixKind::DescWord,
            target: t,
        });
        self.pushed(Some(target.line))
    }

    fn expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Num(n) => {
                let v = if *n < 0 {
                    (*n as i16) as u16
                } else {
                    *n as u16
                };
                self.emit(Instr::LoadImm(v));
                self.pushed(e.line())
            }
            Expr::Bool(b) => {
                self.emit(Instr::LoadImm(*b as u16));
                self.pushed(None)
            }
            Expr::Var { name, line } => {
                match self.slot(name, *line) {
                    Slot::Local(slot, _) => {
                        let slot = self.local_slot_u8(slot, Some(*line))?;
                        self.emit(Instr::LoadLocal(slot));
                    }
                    Slot::Global(off, _) => self.emit(Instr::LoadGlobal(off)),
                }
                self.pushed(Some(*line))
            }
            Expr::Index { name, index, line } => {
                self.push_base(name, *line)?;
                self.expr(index)?;
                self.emit(Instr::LoadIndex);
                self.depth -= 1;
                Ok(())
            }
            Expr::Unary { op, expr } => {
                self.expr(expr)?;
                match op {
                    UnOp::Neg => self.emit(Instr::Neg),
                    UnOp::Not => {
                        self.emit(Instr::LoadImm(0));
                        self.emit(Instr::CmpEq);
                    }
                }
                Ok(())
            }
            Expr::Deref(p) => {
                self.expr(p)?;
                self.emit(Instr::Read);
                Ok(())
            }
            Expr::Binary { op, lhs, rhs } => {
                match op {
                    BinOp::And | BinOp::Or => {
                        // Logical: normalise both sides to 0/1.
                        self.expr(lhs)?;
                        self.emit(Instr::LoadImm(0));
                        self.emit(Instr::CmpNe);
                        self.expr(rhs)?;
                        self.emit(Instr::LoadImm(0));
                        self.emit(Instr::CmpNe);
                        self.emit(if *op == BinOp::And {
                            Instr::And
                        } else {
                            Instr::Or
                        });
                    }
                    _ => {
                        self.expr(lhs)?;
                        self.expr(rhs)?;
                        self.emit(match op {
                            BinOp::Add => Instr::Add,
                            BinOp::Sub => Instr::Sub,
                            BinOp::Mul => Instr::Mul,
                            BinOp::Div => Instr::Div,
                            BinOp::Mod => Instr::Mod,
                            BinOp::Eq => Instr::CmpEq,
                            BinOp::Ne => Instr::CmpNe,
                            BinOp::Lt => Instr::CmpLt,
                            BinOp::Le => Instr::CmpLe,
                            BinOp::Gt => Instr::CmpGt,
                            BinOp::Ge => Instr::CmpGe,
                            // Audited: not guest-reachable. And/Or are
                            // consumed by the logical-normalisation arm
                            // above; this arm only sees the arithmetic
                            // and comparison operators.
                            BinOp::And | BinOp::Or => unreachable!(),
                        });
                    }
                }
                self.depth -= 1;
                Ok(())
            }
            Expr::Call(c) => self.gen_call(c).map(|_| ()),
            Expr::AddrOf { name, index, line } => {
                match self.slot(name, *line) {
                    Slot::Local(slot, _) => {
                        let slot = self.local_slot_u8(slot, Some(*line))?;
                        self.emit(Instr::LoadLocalAddr(slot));
                    }
                    Slot::Global(off, _) => self.emit(Instr::LoadGlobalAddr(off)),
                }
                self.pushed(Some(*line))?;
                if let Some(i) = index {
                    self.expr(i)?;
                    self.emit(Instr::Add);
                    self.depth -= 1;
                }
                Ok(())
            }
            Expr::CoCreate(p) => {
                self.gen_desc(p)?;
                self.emit(Instr::NewContext);
                Ok(())
            }
            Expr::Spawn(p) => {
                self.gen_desc(p)?;
                self.emit(Instr::Spawn);
                Ok(())
            }
            Expr::CoStart(c) => {
                // First transfer: no values sent, one received.
                let temps = self.spill_pending(e.line())?;
                self.expr(c)?;
                self.emit(Instr::Xfer);
                // The context word was consumed; the resumption value
                // replaces it, so depth is unchanged.
                self.reload_pending(&temps, true)?;
                Ok(())
            }
            Expr::CoTransfer { ctx, value } => {
                let temps = self.spill_pending(e.line())?;
                self.expr(value)?;
                self.expr(ctx)?;
                self.emit(Instr::Xfer);
                // Value and context consumed; one value comes back.
                self.depth -= 1;
                self.reload_pending(&temps, true)?;
                Ok(())
            }
            Expr::CoCaller => {
                self.emit(Instr::ReturnContext);
                self.pushed(None)
            }
        }
    }
}
