//! Coroutines as ordinary programs (paper §3's feature F3: the
//! transfer discipline is chosen by the destination, not the caller).
//!
//! A producer coroutine yields running sums to the consumer; the same
//! `XFER` primitive that implements calls implements the transfers,
//! and the "orderly fallback" flushes the accelerators around each
//! one.
//!
//! Run with `cargo run --example coroutines`.

use fpc_compiler::{compile, Options};
use fpc_vm::{Machine, MachineConfig};

const SRC: &str = "
    module Streams;

    -- Yields 1, 1+2, 1+2+3, ... to whoever starts it; each transfer
    -- back in carries the next increment.
    proc summer()
    var total: int;
    var step: int;
    begin
      step := 1;
      while true do
        total := total + step;
        step := co_transfer(co_caller(), total);
      end;
    end;

    proc main()
    var c: ctx;
    var v: int;
    var i: int;
    begin
      c := co_create(summer);
      v := co_start(c);          -- 1
      out v;
      i := 2;
      while i <= 6 do
        v := co_transfer(co_caller(), i);
        out v;                   -- triangular numbers
        i := i + 1;
      end;
    end;
    end.";

fn main() {
    let compiled = compile(&[SRC], Options::default()).expect("compiles");
    for (name, config) in [("I2", MachineConfig::i2()), ("I3", MachineConfig::i3())] {
        let mut m = Machine::load(&compiled.image, config).expect("loads");
        m.run(100_000).expect("runs");
        let t = &m.stats().transfers;
        println!("{name}: triangular numbers = {:?}", m.output());
        println!(
            "  {} coroutine transfers at {:.1} cycles each (calls would be {:.1})",
            t.coroutines.count,
            t.coroutines.mean_cycles(),
            t.calls.mean_cycles().max(2.0),
        );
    }
}
