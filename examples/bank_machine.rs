//! Replays the call/return sequence of the paper's **figure 3** against
//! the register-bank machine, printing which bank shadows which frame
//! after every event — the "assignment of register banks for stacks
//! and frames" picture.
//!
//! The sequence (from the figure): begin in X, call A, return, call B,
//! call C, return, call D, return.
//!
//! Run with `cargo run --example bank_machine`.

use fpc_core::layout;
use fpc_mem::{Memory, WordAddr};
use fpc_vm::BankMachine;

#[derive(Clone, Copy)]
struct Frame {
    name: &'static str,
    addr: WordAddr,
}

fn show(bm: &BankMachine, frames: &[Frame], event: &str) {
    let mut cells = Vec::new();
    for f in frames {
        if let Some(b) = bm.bank_of(f.addr) {
            cells.push(format!("{}=bank{}", f.name, b));
        }
    }
    println!("{event:<12} {}", cells.join("  "));
}

fn main() {
    println!("figure 3: bank assignment during a call/return sequence\n");
    let mut mem = Memory::new(0x4000);
    let mut bm = BankMachine::new(4, 16);

    let x = Frame {
        name: "X",
        addr: WordAddr(0x100),
    };
    let a = Frame {
        name: "A",
        addr: WordAddr(0x140),
    };
    let b = Frame {
        name: "B",
        addr: WordAddr(0x180),
    };
    let c = Frame {
        name: "C",
        addr: WordAddr(0x1C0),
    };
    let d = Frame {
        name: "D",
        addr: WordAddr(0x200),
    };
    let all = [x, a, b, c, d];

    // Begin in X.
    bm.assign(&mut mem, x.addr, 8, Some(&[]), None);
    bm.write_local(x.addr, 0, 7); // X has live locals
    show(&bm, &all, "begin in X");

    // call A: the stack bank is renamed to A's locals (§7.2).
    bm.assign(&mut mem, a.addr, 8, Some(&[1, 2]), Some(x.addr));
    show(&bm, &all, "call A");

    // return from A: its bank is freed, contents discarded.
    bm.release(a.addr);
    bm.activate(&mut mem, x.addr, 8, None);
    show(&bm, &all, "return");

    // call B, then C (nested).
    bm.assign(&mut mem, b.addr, 8, Some(&[3]), Some(x.addr));
    show(&bm, &all, "call B");
    bm.assign(&mut mem, c.addr, 8, Some(&[4]), Some(b.addr));
    show(&bm, &all, "call C");

    // return from C, call D.
    bm.release(c.addr);
    bm.activate(&mut mem, b.addr, 8, None);
    show(&bm, &all, "return");
    bm.assign(&mut mem, d.addr, 8, Some(&[5]), Some(b.addr));
    show(&bm, &all, "call D");
    bm.release(d.addr);
    bm.activate(&mut mem, b.addr, 8, None);
    show(&bm, &all, "return");

    let s = bm.stats();
    println!(
        "\n{} assignments, {} renames ({} words moved for free), \
         {} overflows, {} underflows",
        s.assigns, s.renames, s.renamed_words, s.overflows, s.underflows
    );
    println!(
        "X's local 0 is still {} in its bank (never written to storage: \
         {} words flushed)",
        bm.peek_local(WordAddr(0x100), 0).expect("still shadowed"),
        s.flushed_words,
    );
    let _ = layout::FRAME_HEADER_WORDS;
}
