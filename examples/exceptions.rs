//! Exceptions as transfers (paper §3: the model should handle
//! "procedure calls and returns, coroutine transfers, exceptions,
//! process switches … in a uniform way"; §5.1: instructions "combine
//! an XFER with other operations, to support traps").
//!
//! A Mesa-lite handler procedure is installed as the trap context. A
//! divide-by-zero then *transfers* to it like any call; because
//! arguments and results are symmetric (feature F4), the handler's
//! return value lands exactly where the quotient would have been, and
//! the trapped computation resumes with the substitute.
//!
//! Run with `cargo run --example exceptions`.

use fpc_compiler::{compile, Options};
use fpc_vm::{Machine, MachineConfig, ProcRef};

const SRC: &str = "
    module Guarded;
    var faults: int;

    -- The trap handler: an ordinary procedure taking the trap code and
    -- returning a substitute result for the faulting operation.
    proc on_trap(code: int): int
    begin
      faults := faults + 1;
      return 999;            -- stands in for the impossible quotient
    end;

    proc risky(a: int, b: int): int
    begin
      return a / b;          -- traps when b = 0
    end;

    proc main()
    var i: int;
    begin
      i := 0 - 2;
      while i <= 2 do
        out risky(12, i);    -- -6, -12, 999 (trapped), 12, 6
        i := i + 1;
      end;
      out faults;            -- 1
    end;
    end.";

fn main() {
    let compiled = compile(&[SRC], Options::default()).expect("compiles");
    let mut m = Machine::load(&compiled.image, MachineConfig::i3()).expect("loads");
    // on_trap is entry 0 of module 0.
    m.set_trap_handler(
        &compiled.image,
        ProcRef {
            module: 0,
            ev_index: 0,
        },
    )
    .expect("handler installs");
    m.run(100_000).expect("runs");
    let out: Vec<i16> = m.output().iter().map(|&w| w as i16).collect();
    println!("output: {out:?}");
    let t = &m.stats().transfers;
    println!(
        "{} calls, {} trap transfer(s) — same XFER machinery, same cost model;",
        t.calls.count, t.traps.count
    );
    println!(
        "the handler's return value replaced the impossible quotient, and the\n\
         loop carried on — the destination context decided the discipline (F3)."
    );
}
