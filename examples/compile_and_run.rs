//! A small driver: compile a Mesa-lite source file and run it on a
//! chosen implementation, printing the disassembly, the compile-time
//! statistics, and the run-time transfer costs.
//!
//! Usage:
//!
//! ```text
//! cargo run --example compile_and_run -- [path.mesa] [i1|i2|i3|i4]
//! ```
//!
//! With no arguments an embedded sample program is used on I3.

use std::env;
use std::fs;

use fpc_compiler::{compile, Linkage, Options};
use fpc_vm::{listing, Machine, MachineConfig};

const SAMPLE: &str = "
    module Sample;
    var total: int;
    proc square(x: int): int begin return x * x; end;
    proc main()
    var i: int;
    begin
      i := 1;
      while i <= 5 do
        total := total + square(i);
        i := i + 1;
      end;
      out total;   -- 55
    end;
    end.";

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let source = match args.first() {
        Some(path) => {
            fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => SAMPLE.to_string(),
    };
    let config = match args.get(1).map(|s| s.as_str()) {
        Some("i1") => MachineConfig::i1(),
        Some("i2") => MachineConfig::i2(),
        Some("i4") => MachineConfig::i4(),
        _ => MachineConfig::i3(),
    };
    let linkage = if config.return_stack > 0 {
        Linkage::Direct
    } else {
        Linkage::Mesa
    };
    let options = Options {
        linkage,
        bank_args: config.renaming(),
    };

    let compiled = compile(&[&source], options).unwrap_or_else(|e| panic!("{e}"));
    let stats = &compiled.stats;
    println!(
        "compiled {} bytes of code, {} instructions ({:.0}% one byte), {} call sites",
        stats.code_bytes,
        stats.size.total(),
        100.0 * stats.size.one_byte_fraction(),
        stats.calls.total(),
    );
    for f in &stats.frames {
        println!("  frame {}.{}: {} bytes", f.module, f.proc, f.frame_bytes());
    }

    // Full annotated disassembly.
    println!(
        "\n{}",
        listing(&compiled.image).expect("linker output decodes")
    );

    let mut m = Machine::load(&compiled.image, config).expect("loads");
    m.run(100_000_000).expect("runs");
    println!("\noutput: {:?}", m.output());
    let s = m.stats();
    println!(
        "{} instructions, {} cycles, {} calls+returns ({:.1}% at jump speed)",
        s.instructions,
        s.cycles,
        s.transfers.calls_and_returns(),
        100.0 * s.transfers.fast_call_return_fraction(),
    );
}
