//! Quickstart: the two levels of the reproduction in one file.
//!
//! 1. The abstract §3 model — contexts and `XFER` — run directly.
//! 2. A Mesa-lite program compiled to the byte code and executed on
//!    the space-optimal (I2) and fully accelerated (I4) machines, with
//!    the cost difference the paper is about.
//!
//! Run with `cargo run --example quickstart`.

use fpc_compiler::{compile, Linkage, Options};
use fpc_core::model::{Machine as ModelMachine, Op, Procedure};
use fpc_vm::{cost, Machine, MachineConfig};

fn model_level() {
    println!("== the abstract transfer model (paper §3) ==");
    let mut m = ModelMachine::new();
    let double = m.define(Procedure::new(
        "double",
        1,
        vec![
            Op::TakeArgs(1),
            Op::PushLocal(0),
            Op::PushLocal(0),
            Op::Add,
            Op::Return(1),
        ],
    ));
    let main = m.define(Procedure::new(
        "main",
        0,
        vec![
            Op::TakeArgs(0),
            Op::PushConst(21),
            Op::Call {
                proc: double,
                nargs: 1,
            },
            Op::TakeResults(1),
            Op::Emit,
            Op::Halt,
        ],
    ));
    let out = m.run(main, &[], 1000).expect("model runs");
    println!(
        "double(21) via XFER = {:?} ({} transfers)\n",
        out,
        m.xfers()
    );
}

fn machine_level() {
    println!("== the byte-coded implementations (paper §5-§7) ==");
    let src = "
        module Quick;
        proc fib(n: int): int
        begin
          if n < 2 then return n; end;
          return fib(n - 1) + fib(n - 2);
        end;
        proc main() begin out fib(17); end;
        end.";

    for (name, config, linkage) in [
        ("I2 (Mesa encoding)", MachineConfig::i2(), Linkage::Mesa),
        (
            "I4 (fully accelerated)",
            MachineConfig::i4(),
            Linkage::Direct,
        ),
    ] {
        let compiled = compile(
            &[src],
            Options {
                linkage,
                bank_args: config.renaming(),
            },
        )
        .expect("compiles");
        let mut m = Machine::load(&compiled.image, config).expect("loads");
        m.run(10_000_000).expect("runs");
        let t = &m.stats().transfers;
        println!(
            "{name}: fib(17) = {:?}\n  {} calls+returns, {:.2} cycles/call, \
             {:.1}% at jump speed (jump = {} cycles)",
            m.output(),
            t.calls_and_returns(),
            t.calls.mean_cycles(),
            100.0 * t.fast_call_return_fraction(),
            cost::jump_cycles(),
        );
    }
}

fn main() {
    model_level();
    machine_level();
}
