//! Echo server: the smallest cross-machine XFER.
//!
//! One client population calls `echo` on a remote node through an
//! `EXTERNALCALL` whose link-vector slot holds a **remote** descriptor.
//! The call marshals its argument into a request frame, parks the
//! context, and restarts the transfer when the reply lands — or, when
//! the storm in part two crashes the server, delivers a restartable
//! `RemoteFault` that the guest handler turns into a failover to the
//! replica.
//!
//! Run with `cargo run --example echo_server`.

use fpc_isa::Instr;
use fpc_rpc::{CallPolicy, ChannelTransport, Cluster, LinkConfig, ServerNode};
use fpc_sched::{Context, FuelPolicy, Population, SchedConfig};
use fpc_vm::inject::{NetEvent, NetPlan};
use fpc_vm::{FaultKind, Image, ImageBuilder, Machine, MachineConfig, ProcRef, ProcSpec};

/// The server image: `echo(x)` halts with `x` still on the stack.
/// Service procedures end in `HALT` — a remote request has no caller
/// frame to `RET` to; the host marshals whatever the stack holds.
fn server_image() -> Image {
    let mut b = ImageBuilder::new();
    let m = b.module("echo_srv");
    b.proc_with(m, ProcSpec::new("main", 0, 0), |a| {
        a.instr(Instr::Halt);
    });
    b.proc_with(m, ProcSpec::new("echo", 1, 2), |a| {
        a.instr(Instr::StoreLocal(0));
        a.instr(Instr::LoadLocal(0));
        a.instr(Instr::Halt);
    });
    b.build(ProcRef {
        module: 0,
        ev_index: 0,
    })
    .unwrap()
}

fn echo_server() -> ServerNode {
    ServerNode::new(server_image(), MachineConfig::i2()).service(
        "echo",
        ProcRef {
            module: 0,
            ev_index: 1,
        },
        1,
        1,
    )
}

/// The client image: three `echo` calls through the remote descriptor
/// in link slot 0, plus a `RemoteFault` handler that asks the host to
/// rebind the slot to the next replica and restarts the call.
fn client_image() -> (Image, ProcRef) {
    let mut b = ImageBuilder::new();
    let m = b.module("cli");
    let lv = b.import_remote(m, "echo", 1, 1, 1);
    b.proc_with(m, ProcSpec::new("main", 0, 0), move |a| {
        for x in [7, 21, 42] {
            a.instr(Instr::LoadImm(x));
            a.instr(Instr::ExternalCall(lv));
            a.instr(Instr::Out);
        }
        a.instr(Instr::Halt);
    });
    let fh = b.proc_with(m, ProcSpec::new("on_remote_fault", 1, 2), |a| {
        a.instr(Instr::StoreLocal(0)); // fault argument (the info word)
        a.instr(Instr::RemoteInfo); // push (lv_index << 4) | fault class
        a.instr(Instr::Failover); // ask the host to rebind that slot
        a.instr(Instr::Ret); // restart the faulted transfer
    });
    let image = b
        .build(ProcRef {
            module: 0,
            ev_index: 0,
        })
        .unwrap();
    (
        image,
        ProcRef {
            module: 0,
            ev_index: fh,
        },
    )
}

fn run(title: &str, plan: NetPlan) {
    println!("== {title} ==");
    let (image, fh) = client_image();
    let cfg = MachineConfig::i2().with_fault_reserve(512);
    let population = Population::from_factory(2, move |id, buf| {
        let mut m = Machine::load_in(&image, cfg, buf).expect("client loads");
        m.install_fault_handler(FaultKind::RemoteFault, &image, fh)
            .expect("handler installs");
        Context::new(id, m, FuelPolicy::Quantum(256))
    });
    let sched_cfg = SchedConfig {
        workers: 2,
        deterministic: true,
        seed: 7,
        record_trace: false,
        record_finals: true,
    };
    let mut cluster = Cluster::new(
        population,
        &sched_cfg,
        ChannelTransport::with_plan(LinkConfig::default(), plan),
        CallPolicy::default(),
        7,
    );
    cluster.add_server(1, echo_server());
    cluster.add_server(2, echo_server());
    cluster.set_replicas(0, vec![1, 2]); // slot 0 may fail over 1 -> 2
    let report = cluster.run();
    println!(
        "  {} calls completed, {} retries, {} timeouts, {} failovers, \
         {} faults delivered to guest handlers",
        report.rpc.completed,
        report.rpc.retries,
        report.rpc.timeouts,
        report.rpc.failovers,
        report.rpc.faults_delivered,
    );
    println!(
        "  mean call latency {:.0} cycles; link carried {} frames \
         ({} dropped, {} bounced off dead nodes)",
        report.rpc.latency.mean(),
        report.net.sent,
        report.net.dropped + report.net.partition_dropped,
        report.net.naks,
    );
    for f in report.sched.finals_sorted() {
        println!(
            "  context {}: output hash {:#018x}, {} handler instructions{}",
            f.id,
            f.output_hash,
            f.handler_instructions,
            if f.faulted { " (FAULTED)" } else { "" }
        );
    }
    println!();
}

fn main() {
    // Part one: a healthy wire.
    run("clean run", NetPlan::from_events(Vec::new()));

    // Part two: node 1 is dead from the start and never restarts. The
    // first attempt bounces, the guest handler fails the slot over to
    // node 2, and every call still completes — the recovery work is
    // visible as handler instructions, and the output hashes match the
    // clean run's.
    run(
        "node 1 dead at start: failover to the replica",
        NetPlan::from_events(vec![NetEvent::CrashNode { at: 0, node: 1 }]),
    );
}
